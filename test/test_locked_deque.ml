module Ld = Wool_deque.Locked_deque

let mk ?(capacity = 64) () = Ld.create ~capacity ~dummy:(-1) ()

let test_lifo_pop () =
  let d = mk () in
  List.iter (Ld.push d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "pop 3" (Some 3) (Ld.pop d);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Ld.pop d);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Ld.pop d);
  Alcotest.(check (option int)) "empty" None (Ld.pop d)

let steal_modes = [ ("base", `Base); ("peek", `Peek); ("trylock", `Trylock) ]

let test_steal_fifo () =
  List.iter
    (fun (name, mode) ->
      let d = mk () in
      List.iter (Ld.push d) [ 1; 2; 3 ];
      Alcotest.(check (option int)) (name ^ " oldest") (Some 1) (Ld.steal ~mode d);
      Alcotest.(check (option int)) (name ^ " next") (Some 2) (Ld.steal ~mode d))
    steal_modes

let test_steal_empty () =
  List.iter
    (fun (name, mode) ->
      let d = mk () in
      Alcotest.(check (option int)) (name ^ " empty") None (Ld.steal ~mode d))
    steal_modes

let test_pop_steal_meet () =
  let d = mk () in
  Ld.push d 1;
  Ld.push d 2;
  Alcotest.(check (option int)) "steal 1" (Some 1) (Ld.steal ~mode:`Base d);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Ld.pop d);
  Alcotest.(check (option int)) "pop empty" None (Ld.pop d);
  Alcotest.(check (option int)) "steal empty" None (Ld.steal ~mode:`Base d)

let test_overflow () =
  let d = mk ~capacity:2 () in
  Ld.push d 1;
  Ld.push d 2;
  Alcotest.check_raises "overflow" Wool_deque.Direct_stack.Pool_overflow
    (fun () -> Ld.push d 3);
  (* the raise must precede any mutation: the deque still works *)
  Alcotest.(check (option int)) "pops survive overflow" (Some 2) (Ld.pop d)

let test_create_validation () =
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Locked_deque.create: capacity") (fun () ->
      ignore (Ld.create ~capacity:0 ~dummy:0 ()))

let test_stats () =
  let d = mk () in
  ignore (Ld.steal ~mode:`Peek d);
  (* empty: peek reject, no lock *)
  Ld.push d 1;
  ignore (Ld.steal ~mode:`Peek d);
  ignore (Ld.pop d);
  let s = Ld.stats d in
  Alcotest.(check int) "peek rejects" 1 s.Ld.peek_rejects;
  Alcotest.(check int) "lock acquires" 2 s.Ld.lock_acquires;
  Alcotest.(check int) "no trylock aborts" 0 s.Ld.trylock_aborts

let test_size () =
  let d = mk () in
  Alcotest.(check int) "empty" 0 (Ld.size d);
  Ld.push d 1;
  Ld.push d 2;
  Alcotest.(check int) "two" 2 (Ld.size d);
  ignore (Ld.steal ~mode:`Base d);
  Alcotest.(check int) "one" 1 (Ld.size d)

let qcheck_owner_model =
  QCheck.Test.make ~name:"locked deque owner ops = list stack" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 60) (option small_nat))
    (fun ops ->
      let d = mk () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              if List.length !model >= 64 then true
              else begin
                Ld.push d v;
                model := v :: !model;
                true
              end
          | None -> (
              match (!model, Ld.pop d) with
              | [], None -> true
              | x :: rest, Some y ->
                  model := rest;
                  x = y
              | [], Some _ | _ :: _, None -> false))
        ops)

let test_concurrent_sum () =
  let d = mk ~capacity:65536 () in
  let n = 20_000 in
  let stolen_sum = Atomic.make 0 in
  let stop = Atomic.make false in
  let thieves =
    List.init 2 (fun k ->
        let mode = if k = 0 then `Base else `Trylock in
        Domain.spawn (fun () ->
            let fails = ref 0 in
            while not (Atomic.get stop) do
              match Ld.steal ~mode d with
              | Some v ->
                  ignore (Atomic.fetch_and_add stolen_sum v : int);
                  fails := 0
              | None ->
                  incr fails;
                  Domain.cpu_relax ();
                  if !fails land 1023 = 0 then Unix.sleepf 0.0002
            done))
  in
  let popped_sum = ref 0 in
  for i = 1 to n do
    Ld.push d i;
    if i land 1 = 0 then begin
      match Ld.pop d with Some v -> popped_sum := !popped_sum + v | None -> ()
    end
  done;
  let rec drain () =
    match Ld.pop d with
    | Some v ->
        popped_sum := !popped_sum + v;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  List.iter Domain.join thieves;
  drain ();
  let expected = n * (n + 1) / 2 in
  Alcotest.(check int) "sum conserved" expected
    (!popped_sum + Atomic.get stolen_sum)

let suite =
  [
    ( "locked_deque",
      [
        Alcotest.test_case "LIFO pop" `Quick test_lifo_pop;
        Alcotest.test_case "steal FIFO (all modes)" `Quick test_steal_fifo;
        Alcotest.test_case "steal empty (all modes)" `Quick test_steal_empty;
        Alcotest.test_case "pop/steal meet" `Quick test_pop_steal_meet;
        Alcotest.test_case "overflow" `Quick test_overflow;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "size" `Quick test_size;
        QCheck_alcotest.to_alcotest qcheck_owner_model;
        Alcotest.test_case "concurrent sum" `Slow test_concurrent_sum;
      ] );
  ]
