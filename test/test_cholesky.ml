module Ch = Wool_workloads.Cholesky
module Tt = Wool_ir.Task_tree
module Rng = Wool_util.Rng

let test_dense_roundtrip () =
  let m = [| [| 1.0; 0.0; 2.0 |]; [| 0.0; 3.0; 0.0 |]; [| 4.0; 0.0; 5.0 |] |] in
  let q, size = Ch.of_dense m in
  Alcotest.(check int) "padded size" 4 size;
  let back = Ch.to_dense q size in
  for i = 0 to 2 do
    for j = 0 to 2 do
      Alcotest.(check (float 1e-12)) "entry" m.(i).(j) back.(i).(j)
    done
  done;
  Alcotest.(check int) "nonzeros" 5 (Ch.nonzeros q)

let test_random_spd_shape () =
  let rng = Rng.make 3 in
  let q, size = Ch.random_spd rng ~n:20 ~nz:50 in
  Alcotest.(check int) "pow2 size" 32 size;
  let d = Ch.to_dense q size in
  (* stored matrix is lower triangular with a full positive diagonal *)
  for i = 0 to size - 1 do
    Alcotest.(check bool) "positive diagonal" true (d.(i).(i) > 0.0);
    for j = i + 1 to size - 1 do
      Alcotest.(check (float 0.0)) "upper empty" 0.0 d.(i).(j)
    done
  done

let test_factor_known_matrix () =
  (* A = L0 L0^T for a known lower-triangular L0; the factorisation must
     recover L0 exactly (up to float noise). *)
  let l0 = [| [| 2.0; 0.0 |]; [| 1.0; 3.0 |] |] in
  let a =
    [|
      [| 4.0; 0.0 |];
      (* lower triangle of L0 L0^T: [4 0; 2 10] *)
      [| 2.0; 10.0 |];
    |]
  in
  let qa, size = Ch.of_dense a in
  let l = Ch.serial_factor qa size in
  let dl = Ch.to_dense l size in
  for i = 0 to 1 do
    for j = 0 to 1 do
      Alcotest.(check (float 1e-9)) "factor" l0.(i).(j) dl.(i).(j)
    done
  done

let test_factor_random_instances () =
  List.iter
    (fun seed ->
      let rng = Rng.make seed in
      let a, size = Ch.random_spd rng ~n:24 ~nz:60 in
      let l = Ch.serial_factor a size in
      Alcotest.(check bool)
        (Printf.sprintf "LL^T = A (seed %d)" seed)
        true
        (Ch.check_factor ~a ~l size))
    [ 1; 2; 3; 4; 5 ]

let test_factor_not_spd () =
  let a = [| [| -1.0 |] |] in
  let q, size = Ch.of_dense a in
  Alcotest.check_raises "negative pivot"
    (Failure "Cholesky.factor: matrix not positive definite") (fun () ->
      ignore (Ch.serial_factor q size))

let test_wool_factor_matches_serial () =
  let rng = Rng.make 7 in
  let a, size = Ch.random_spd rng ~n:60 ~nz:200 in
  let expected = Ch.to_dense (Ch.serial_factor a size) size in
  Test_util.with_pool ~workers:3 (fun pool ->
      let l = Wool.run pool (fun ctx -> Ch.wool_factor ctx a size) in
      let dl = Ch.to_dense l size in
      for i = 0 to size - 1 do
        for j = 0 to size - 1 do
          if Float.abs (dl.(i).(j) -. expected.(i).(j)) > 1e-9 then
            Alcotest.failf "mismatch at (%d,%d)" i j
        done
      done)

let test_wool_factor_valid () =
  let rng = Rng.make 13 in
  let a, size = Ch.random_spd rng ~n:40 ~nz:120 in
  Test_util.with_pool ~workers:4 (fun pool ->
      let l = Wool.run pool (fun ctx -> Ch.wool_factor ctx a size) in
      Alcotest.(check bool) "LL^T = A" true (Ch.check_factor ~a ~l size))

let test_tree_deterministic () =
  let t1 = Ch.tree ~seed:11 ~n:30 ~nz:90 () in
  let t2 = Ch.tree ~seed:11 ~n:30 ~nz:90 () in
  Alcotest.(check int) "same work" (Tt.work t1) (Tt.work t2);
  Alcotest.(check int) "same tasks" (Tt.n_tasks t1) (Tt.n_tasks t2);
  let t3 = Ch.tree ~seed:12 ~n:30 ~nz:90 () in
  Alcotest.(check bool) "seed changes instance" true (Tt.work t1 <> Tt.work t3)

let test_tree_work_close_to_serial_flops () =
  let seed = 5 and n = 30 and nz = 90 in
  let rng = Rng.make seed in
  let a, size = Ch.random_spd rng ~n ~nz in
  (* serial cost of the same instance *)
  let serial_cost =
    let _, t = Wool_util.Clock.time (fun () -> ()) in
    ignore t;
    (* use the recorded tree against an independent serial count *)
    Ch.serial_factor a size |> ignore;
    Tt.work (Ch.tree ~seed ~n ~nz ())
  in
  let t = Ch.tree ~seed ~n ~nz () in
  let tree_work = Tt.work t in
  let ratio = float_of_int tree_work /. float_of_int serial_cost in
  Alcotest.(check bool) "self consistent" true (ratio > 0.99 && ratio < 1.01);
  Alcotest.(check bool) "has tasks" true (Tt.n_tasks t > 10)

let test_tree_granularity_is_fine () =
  let t = Ch.tree ~seed:7 ~n:125 ~nz:500 () in
  let g = float_of_int (Tt.work t) /. float_of_int (Tt.n_tasks t) in
  (* the paper's cholesky G_T is ~200-230 cycles *)
  Alcotest.(check bool) (Printf.sprintf "fine grained (%.0f)" g) true
    (g > 50.0 && g < 1000.0)

let test_insert_accumulates () =
  let q, size = Ch.of_dense [| [| 1.5 |] |] in
  Alcotest.(check int) "size 1" 1 size;
  match q with
  | Ch.Scalar v -> Alcotest.(check (float 1e-12)) "value" 1.5 v
  | Ch.Zero | Ch.Quad _ -> Alcotest.fail "expected scalar"

let test_random_spd_validation () =
  let rng = Rng.make 1 in
  Alcotest.check_raises "bad n"
    (Invalid_argument "Cholesky.random_spd: size must be positive") (fun () ->
      ignore (Ch.random_spd rng ~n:0 ~nz:1))

let suite =
  [
    ( "cholesky",
      [
        Alcotest.test_case "dense roundtrip" `Quick test_dense_roundtrip;
        Alcotest.test_case "random SPD shape" `Quick test_random_spd_shape;
        Alcotest.test_case "known factor" `Quick test_factor_known_matrix;
        Alcotest.test_case "random instances" `Quick test_factor_random_instances;
        Alcotest.test_case "not SPD" `Quick test_factor_not_spd;
        Alcotest.test_case "wool matches serial" `Slow
          test_wool_factor_matches_serial;
        Alcotest.test_case "wool factor valid" `Slow test_wool_factor_valid;
        Alcotest.test_case "tree deterministic" `Quick test_tree_deterministic;
        Alcotest.test_case "tree work consistency" `Quick
          test_tree_work_close_to_serial_flops;
        Alcotest.test_case "tree granularity" `Quick
          test_tree_granularity_is_fine;
        Alcotest.test_case "scalar insert" `Quick test_insert_accumulates;
        Alcotest.test_case "spd validation" `Quick test_random_spd_validation;
      ] );
  ]
