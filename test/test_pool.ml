let all_modes = Test_util.all_modes
let fib = Test_util.fib
let fib_serial = Test_util.fib_serial

let test_fib_all_modes_serial () =
  List.iter
    (fun (name, mode) ->
      Test_util.with_pool ~workers:1 ~mode (fun pool ->
          Alcotest.(check int)
            (name ^ " 1 worker")
            (fib_serial 20)
            (Wool.run pool (fun ctx -> fib ctx 20))))
    all_modes

let test_fib_all_modes_parallel () =
  List.iter
    (fun (name, mode) ->
      Test_util.with_pool ~workers:4 ~mode (fun pool ->
          Alcotest.(check int)
            (name ^ " 4 workers")
            (fib_serial 22)
            (Wool.run pool (fun ctx -> fib ctx 22))))
    all_modes

let test_publicity_variants () =
  List.iter
    (fun publicity ->
      Test_util.with_pool ~workers:3 ~mode:Wool.Private ~publicity (fun pool ->
          Alcotest.(check int) "fib" (fib_serial 20)
            (Wool.run pool (fun ctx -> fib ctx 20))))
    [ Wool.All_private; Wool.All_public; Wool.Adaptive 1; Wool.Adaptive 8 ]

let test_repeated_runs () =
  Test_util.with_pool ~workers:2 (fun pool ->
      for n = 5 to 15 do
        Alcotest.(check int) "fib n" (fib_serial n)
          (Wool.run pool (fun ctx -> fib ctx n))
      done)

let test_spawn_returns_value_via_join () =
  Test_util.with_pool ~workers:1 (fun pool ->
      let r =
        Wool.run pool (fun ctx ->
            let f = Wool.spawn ctx (fun _ -> "hello") in
            Wool.join ctx f)
      in
      Alcotest.(check string) "value" "hello" r)

let test_lifo_violation_raises () =
  Test_util.with_pool ~workers:1 (fun pool ->
      Wool.run pool (fun ctx ->
          let a = Wool.spawn ctx (fun _ -> 1) in
          let b = Wool.spawn ctx (fun _ -> 2) in
          (try
             ignore (Wool.join ctx a : int);
             Alcotest.fail "expected LIFO violation"
           with Invalid_argument _ -> ());
          (* clean up in the right order *)
          Alcotest.(check int) "b" 2 (Wool.join ctx b);
          Alcotest.(check int) "a" 1 (Wool.join ctx a)))

let test_exception_propagates_inline () =
  Test_util.with_pool ~workers:1 (fun pool ->
      Wool.run pool (fun ctx ->
          let f = Wool.spawn ctx (fun _ -> failwith "task boom") in
          match Wool.join ctx f with
          | exception Failure msg -> Alcotest.(check string) "msg" "task boom" msg
          | () -> Alcotest.fail "expected exception"))

let test_exception_propagates_stolen () =
  (* Force stealing by keeping the spawner busy; the stolen task raises and
     the exception must surface at the join. *)
  Test_util.with_pool ~workers:4 ~publicity:Wool.All_public (fun pool ->
      let saw = ref 0 in
      Wool.run pool (fun ctx ->
          for _ = 1 to 200 do
            let f = Wool.spawn ctx (fun _ -> failwith "remote boom") in
            (* do some work so a thief has time to take the task *)
            ignore (Sys.opaque_identity (fib_serial 12) : int);
            match Wool.join ctx f with
            | exception Failure _ -> incr saw
            | () -> Alcotest.fail "expected exception"
          done);
      Alcotest.(check int) "all raised" 200 !saw)

let test_call () =
  Test_util.with_pool ~workers:1 (fun pool ->
      Alcotest.(check int) "call" 7
        (Wool.run pool (fun ctx -> Wool.call ctx (fun _ -> 7))))

let test_parallel_for_covers_range () =
  List.iter
    (fun workers ->
      Test_util.with_pool ~workers (fun pool ->
          let n = 1000 in
          let hits = Array.init n (fun _ -> Atomic.make 0) in
          Wool.run pool (fun ctx ->
              Wool.parallel_for ctx ~grain:7 0 n (fun i -> Atomic.incr hits.(i)));
          Array.iteri
            (fun i c ->
              if Atomic.get c <> 1 then
                Alcotest.failf "index %d hit %d times" i (Atomic.get c))
            hits))
    [ 1; 4 ]

let test_parallel_for_empty () =
  Test_util.with_pool ~workers:1 (fun pool ->
      Wool.run pool (fun ctx ->
          Wool.parallel_for ctx 5 5 (fun _ -> Alcotest.fail "must not run")))

let test_parallel_reduce () =
  Test_util.with_pool ~workers:3 (fun pool ->
      let n = 5000 in
      let total =
        Wool.run pool (fun ctx ->
            Wool.parallel_reduce ctx ~grain:13 1 (n + 1) ~neutral:0 Fun.id ( + ))
      in
      Alcotest.(check int) "sum" (n * (n + 1) / 2) total)

let test_both () =
  Test_util.with_pool ~workers:2 (fun pool ->
      let a, b =
        Wool.run pool (fun ctx ->
            Wool.both ctx (fun _ -> fib_serial 10) (fun _ -> fib_serial 11))
      in
      Alcotest.(check int) "left" (fib_serial 10) a;
      Alcotest.(check int) "right" (fib_serial 11) b)

let test_stats_spawns () =
  Test_util.with_pool ~workers:1 (fun pool ->
      Wool.Stats.reset pool;
      ignore (Wool.run pool (fun ctx -> fib ctx 10) : int);
      let s = Wool.Stats.aggregate pool in
      (* fib spawns once per internal node *)
      let rec internal n = if n < 2 then 0 else 1 + internal (n - 1) + internal (n - 2) in
      Alcotest.(check int) "spawn count" (internal 10) s.Wool.Pool.spawns;
      Wool.Stats.reset pool;
      Alcotest.(check int) "reset" 0 (Wool.Stats.aggregate pool).Wool.Pool.spawns)

let test_stats_accounting_consistency () =
  Test_util.with_pool ~workers:4 ~publicity:(Wool.Adaptive 2) (fun pool ->
      Wool.Stats.reset pool;
      ignore (Wool.run pool (fun ctx -> fib ctx 22) : int);
      let s = Wool.Stats.aggregate pool in
      Alcotest.(check int) "every spawn joined exactly once" s.Wool.Pool.spawns
        (s.Wool.Pool.inlined_private + s.Wool.Pool.inlined_public
       + s.Wool.Pool.joins_stolen);
      Alcotest.(check int) "stolen joins = steals" s.Wool.Pool.joins_stolen
        s.Wool.Pool.steals;
      if s.Wool.Pool.steals > 100 then
        Alcotest.(check bool) "backoffs below 5%" true
          (float_of_int s.Wool.Pool.backoffs
          <= 0.05 *. float_of_int s.Wool.Pool.steals))

let test_max_pool_depth_stat () =
  (* a flat spawn loop occupies one descriptor per pending iteration *)
  Test_util.with_pool ~workers:1 ~publicity:Wool.All_private (fun pool ->
      Wool.Stats.reset pool;
      Wool.run pool (fun ctx ->
          let futs = List.init 300 (fun i -> Wool.spawn ctx (fun _ -> i)) in
          List.iteri
            (fun i fut -> ignore (Wool.join ctx fut : int); ignore i)
            (List.rev futs));
      Alcotest.(check int) "O(n) descriptors" 300
        (Wool.Stats.aggregate pool).Wool.Pool.max_pool_depth);
  (* deep recursion occupies one per level *)
  Test_util.with_pool ~workers:1 (fun pool ->
      Wool.Stats.reset pool;
      ignore (Wool.run pool (fun ctx -> fib ctx 12) : int);
      let d = (Wool.Stats.aggregate pool).Wool.Pool.max_pool_depth in
      Alcotest.(check bool) (Printf.sprintf "depth-bounded (%d)" d) true
        (d >= 6 && d <= 12))

let test_num_workers_and_ids () =
  Test_util.with_pool ~workers:3 (fun pool ->
      Alcotest.(check int) "workers" 3 (Wool.num_workers pool);
      Alcotest.(check int) "main is worker 0" 0
        (Wool.run pool (fun ctx -> Wool.self_id ctx)))

let test_create_validation () =
  let rejects msg f =
    Alcotest.(check bool)
      msg true
      (match f () with
      | (_ : Wool.Config.t) -> false
      | exception Invalid_argument m ->
          String.length m > 12 && String.sub m 0 12 = "Wool.Config:")
  in
  rejects "zero workers" (fun () -> Wool.Config.make ~workers:0 ());
  rejects "negative capacity" (fun () -> Wool.Config.make ~capacity:(-1) ());
  rejects "zero injection lanes" (fun () ->
      Wool.Config.make ~injection_lanes:0 ());
  rejects "negative injection capacity" (fun () ->
      Wool.Config.make ~injection_capacity:(-1) ());
  rejects "closed ingress with Block" (fun () ->
      Wool.Config.make ~injection_capacity:0 ~admission:Wool.Block ());
  rejects "closed ingress with Shed_oldest" (fun () ->
      Wool.Config.make ~injection_capacity:0 ~admission:Wool.Shed_oldest ());
  rejects "server with closed ingress" (fun () ->
      Wool.Config.make ~server:true ~injection_capacity:0
        ~admission:Wool.Reject ());
  rejects "watchdog with bad interval" (fun () ->
      Wool.Config.make ~watchdog_stalls:3 ~watchdog_interval_ns:0 ());
  rejects "closed ingress with Adaptive" (fun () ->
      Wool.Config.make ~injection_capacity:0 ~admission:Wool.Adaptive ());
  rejects "Adaptive with zero target" (fun () ->
      Wool.Config.make ~admission:Wool.Adaptive ~admission_target_ns:0 ());
  rejects "Adaptive with negative target" (fun () ->
      Wool.Config.make ~admission:Wool.Adaptive
        ~admission_target_ns:(-5_000) ());
  (* Adaptive with a positive target over an open lane is the intended
     combination, and the target knob is inert under other policies *)
  Alcotest.(check bool)
    "adaptive config validates" true
    (match
       Wool.Config.make ~admission:Wool.Adaptive
         ~admission_target_ns:1_000_000 ()
     with
    | (_ : Wool.Config.t) -> true
    | exception Invalid_argument _ -> false);
  Alcotest.(check bool)
    "target knob inert under Reject" true
    (match
       Wool.Config.make ~admission:Wool.Reject ~admission_target_ns:0 ()
     with
    | (_ : Wool.Config.t) -> true
    | exception Invalid_argument _ -> false);
  (* closed ingress + Reject is the legal way to get the pre-ingress
     direct-execution pool *)
  Test_util.with_pool ~workers:1 ~injection_capacity:0
    ~admission:Wool.Reject (fun pool ->
      Alcotest.(check int) "closed ingress still runs" 7
        (Wool.run pool (fun _ -> 7));
      Alcotest.(check bool) "submit rejects" true
        (match Wool.Submit.try_submit pool (fun _ -> ()) with
        | None -> true
        | Some _ -> false))

let contains = Test_util.contains

(* The Mode module is the single name/parse table; every canonical name
   must survive a round trip, the legacy hyphenated spellings in old
   committed BENCH baselines must still parse, and the guarantee
   predicates must agree with each other. *)
let test_mode_round_trip () =
  List.iter
    (fun m ->
      let nm = Wool.Mode.name m in
      (match Wool.Mode.of_name nm with
      | Some m' ->
          Alcotest.(check bool) (nm ^ " round-trips") true (m = m')
      | None -> Alcotest.failf "canonical name %S does not parse back" nm);
      Alcotest.(check bool)
        (nm ^ " guarantee coherent") true
        (Wool.Mode.is_relaxed m
        = (Wool.Mode.guarantee m = Wool.Mode.At_least_once));
      (* direct-stack modes are all exactly-once *)
      if Wool.Mode.is_direct m then
        Alcotest.(check bool)
          (nm ^ " direct implies exact") false (Wool.Mode.is_relaxed m))
    Wool.Mode.all;
  List.iter
    (fun (alias, expect) ->
      match Wool.Mode.of_name alias with
      | Some m -> Alcotest.(check bool) (alias ^ " alias") true (m = expect)
      | None -> Alcotest.failf "legacy spelling %S does not parse" alias)
    [
      ("swap-generic", Wool.Swap_generic);
      ("swap", Wool.Swap_generic);
      ("task-specific", Wool.Task_specific);
      ("chase-lev", Wool.Clev);
      ("chase_lev", Wool.Clev);
      ("ws-mult", Wool.Ws_mult);
      ("low-sync", Wool.Lowsync);
      ("low_sync", Wool.Lowsync);
      ("PRIVATE", Wool.Private);
    ];
  Alcotest.(check bool)
    "unknown name rejected" true
    (Wool.Mode.of_name "bogus" = None)

(* The relaxed modes change the API contract (a task body may run more
   than once), so Config.validate refuses them unless the caller opts in
   with [~allow_relaxed:true], and the error names the opt-in. *)
let test_relaxed_config_validation () =
  List.iter
    (fun (nm, mode) ->
      (match Wool.Config.make ~mode () with
      | (_ : Wool.Config.t) ->
          Alcotest.failf "%s accepted without ~allow_relaxed" nm
      | exception Invalid_argument m ->
          Alcotest.(check bool)
            (nm ^ " error names the opt-in") true
            (contains m "Wool.Config:"
            && contains m "at-least-once"
            && contains m "allow_relaxed"));
      (* the opt-in makes the same config legal *)
      ignore (Wool.Config.make ~mode ~allow_relaxed:true () : Wool.Config.t))
    Test_util.relaxed_modes;
  (* the flag is a harmless no-op on an exactly-once mode *)
  ignore
    (Wool.Config.make ~mode:Wool.Private ~allow_relaxed:true ()
      : Wool.Config.t)

(* On a relaxed pool, plain [spawn] must refuse (its exactly-once
   contract cannot hold there) and point at [spawn_idempotent], which
   must work in its place. *)
let test_spawn_rejected_on_relaxed () =
  List.iter
    (fun (nm, mode) ->
      Test_util.with_pool ~workers:1 ~mode (fun pool ->
          let v =
            Wool.run pool (fun ctx ->
                (match Wool.spawn ctx (fun _ -> 1) with
                | _ -> Alcotest.failf "%s: plain spawn accepted" nm
                | exception Invalid_argument m ->
                    Alcotest.(check bool)
                      (nm ^ " spawn error points at spawn_idempotent") true
                      (contains m "spawn_idempotent" && contains m nm));
                let f = Wool.spawn_idempotent ctx (fun _ -> 41) in
                1 + Wool.join ctx f)
          in
          Alcotest.(check int) (nm ^ " idempotent spawn runs") 42 v))
    Test_util.relaxed_modes

(* Relaxed-mode accounting: after a quiescent run the invariant checker
   must be green, every spawn's join must balance exactly, and the
   coverage inequality (duplicates are legal, lost tasks are not) must
   hold. Exercises the at-least-once counters end to end. *)
let test_relaxed_stats_and_invariants () =
  List.iter
    (fun (nm, mode) ->
      Test_util.with_pool ~workers:4 ~mode (fun pool ->
          Wool.Stats.reset pool;
          Alcotest.(check int)
            (nm ^ " fib digest") (Test_util.fib_serial 20)
            (Wool.run pool (fun ctx -> Test_util.fib ctx 20));
          Alcotest.(check (list string))
            (nm ^ " invariants") []
            (Wool.Invariants.check pool);
          let s = Wool.Stats.aggregate pool in
          let inlined =
            s.Wool.Pool.inlined_private + s.Wool.Pool.inlined_public
          in
          Alcotest.(check int)
            (nm ^ " every spawn joined exactly once")
            s.Wool.Pool.spawns
            (inlined + s.Wool.Pool.joins_stolen);
          Alcotest.(check bool)
            (nm ^ " extraction coverage") true
            (inlined + s.Wool.Pool.steals + s.Wool.Pool.self_joins
            >= s.Wool.Pool.spawns)))
    Test_util.relaxed_modes

(* [Pool_overflow] unwinding: filling a small pool must raise the
   dedicated exception before any state is mutated, the exception path
   must join-or-drain everything outstanding, and the pool must come out
   quiescent and reusable — in every mode. *)
let test_pool_overflow_unwind_all_modes () =
  (* breadth-first: push [n] sibling tasks, join them in LIFO order *)
  let spawn_n ctx n =
    let futs = List.init n (fun i -> Wool.spawn ctx (fun _ -> i)) in
    List.fold_left (fun acc f -> acc + Wool.join ctx f) 0 (List.rev futs)
  in
  let spawn_n_idem ctx n =
    let futs = List.init n (fun i -> Wool.spawn_idempotent ctx (fun _ -> i)) in
    List.fold_left (fun acc f -> acc + Wool.join ctx f) 0 (List.rev futs)
  in
  List.iter
    (fun (name, mode) ->
      Test_util.with_pool ~workers:2 ~mode ~capacity:64 (fun pool ->
          (match mode with
          | Wool.Clev ->
              (* the Chase–Lev deque grows on demand; there is no
                 overflow to raise, the run must simply complete *)
              Alcotest.(check int) (name ^ " completes") (100 * 99 / 2)
                (Wool.run pool (fun ctx -> spawn_n ctx 100))
          | Wool.Ws_mult | Wool.Lowsync ->
              (* the relaxed deques also grow on demand — and accept only
                 idempotent spawns *)
              Alcotest.(check int) (name ^ " completes") (100 * 99 / 2)
                (Wool.run pool (fun ctx -> spawn_n_idem ctx 100))
          | Wool.Locked | Wool.Swap_generic | Wool.Task_specific
          | Wool.Private ->
              Alcotest.check_raises (name ^ " overflow") Wool.Pool_overflow
                (fun () ->
                  ignore (Wool.run pool (fun ctx -> spawn_n ctx 100) : int)));
          Alcotest.(check (list string)) (name ^ " invariants after unwind")
            [] (Wool.Invariants.check pool);
          (* the pool is reusable: same pool, fresh computation *)
          Alcotest.(check int) (name ^ " reusable") (fib_serial 12)
            (Wool.run pool (fun ctx -> fib ctx 12));
          Alcotest.(check (list string)) (name ^ " invariants after reuse")
            [] (Wool.Invariants.check pool)))
    all_modes

let test_stress_kernel_matches_serial () =
  let module S = Wool_workloads.Stress in
  S.reset_leaf_result ();
  S.serial ~height:6 ~leaf_iters:100;
  let expected = S.leaf_result () in
  (* stress accumulates into a shared cell, so a duplicate leaf run
     changes the checksum: exactly-once modes only *)
  List.iter
    (fun (name, mode) ->
      S.reset_leaf_result ();
      Test_util.with_pool ~workers:3 ~mode (fun pool ->
          Wool.run pool (fun ctx -> S.wool ctx ~height:6 ~leaf_iters:100));
      Alcotest.(check int) (name ^ " checksum") expected (S.leaf_result ()))
    Test_util.exact_modes

let test_steal_policies_complete () =
  (* every selector x backoff combination of the shared policy layer must
     run fib correctly on the real runtime *)
  List.iter
    (fun policy ->
      let config =
        Wool.Config.make ~workers:2 ~publicity:Wool.All_public
          ~idle_nap_ns:1_000 ~policy ()
      in
      let pool = Wool.create ~config () in
      Alcotest.(check string) "policy name plumbed"
        (Wool_policy.name policy)
        (Wool.policy_name pool);
      let got = Wool.run pool (fun ctx -> fib ctx 18) in
      Wool.shutdown pool;
      Alcotest.(check int) (Wool_policy.name policy) (fib_serial 18) got)
    (Wool_policy.sweep ());
  (* and each selector must preserve the stress kernel's checksum *)
  let module S = Wool_workloads.Stress in
  S.reset_leaf_result ();
  S.serial ~height:6 ~leaf_iters:100;
  let expected = S.leaf_result () in
  List.iter
    (fun selector ->
      S.reset_leaf_result ();
      let config =
        Wool.Config.make ~workers:2
          ~policy:(Wool_policy.make ~selector ())
          ()
      in
      Wool.with_pool ~config (fun pool ->
          Wool.run pool (fun ctx -> S.wool ctx ~height:6 ~leaf_iters:100));
      Alcotest.(check int)
        (Wool_policy.Selector.name selector ^ " checksum")
        expected (S.leaf_result ()))
    Wool_policy.Selector.all

let test_steal_policies_do_steal () =
  (* with two workers and all-public tasks every selector must eventually
     migrate work; steal counts are stochastic on a loaded host, so retry
     a few times and only then call it a failure *)
  List.iter
    (fun selector ->
      let config =
        Wool.Config.make ~workers:2 ~publicity:Wool.All_public
          ~policy:(Wool_policy.make ~selector ())
          ()
      in
      let rec attempt tries =
        let pool = Wool.create ~config () in
        ignore (Wool.run pool (fun ctx -> fib ctx 22) : int);
        let agg = Wool.Stats.aggregate pool in
        Wool.shutdown pool;
        if agg.Wool.Pool.steals > 0 then ()
        else if tries > 1 then attempt (tries - 1)
        else
          Alcotest.failf "%s: no successful steals in several fib(22) runs"
            (Wool_policy.Selector.name selector)
      in
      attempt 5)
    Wool_policy.Selector.all

let qcheck_parallel_reduce_matches_fold =
  QCheck.Test.make ~name:"parallel_reduce = List.fold_left" ~count:20
    QCheck.(list_of_size (Gen.int_range 0 200) small_signed_int)
    (fun xs ->
      let arr = Array.of_list xs in
      let expected = Array.fold_left ( + ) 0 arr in
      Test_util.with_pool ~workers:2 (fun pool ->
          Wool.run pool (fun ctx ->
              Wool.parallel_reduce ctx ~grain:5 0 (Array.length arr) ~neutral:0
                (fun i -> arr.(i))
                ( + ))
          = expected))

let suite =
  [
    ( "pool",
      [
        Alcotest.test_case "fib serial all modes" `Quick test_fib_all_modes_serial;
        Alcotest.test_case "fib parallel all modes" `Slow
          test_fib_all_modes_parallel;
        Alcotest.test_case "publicity variants" `Slow test_publicity_variants;
        Alcotest.test_case "repeated runs" `Quick test_repeated_runs;
        Alcotest.test_case "join returns value" `Quick
          test_spawn_returns_value_via_join;
        Alcotest.test_case "LIFO violation" `Quick test_lifo_violation_raises;
        Alcotest.test_case "exception inline" `Quick
          test_exception_propagates_inline;
        Alcotest.test_case "exception stolen" `Slow
          test_exception_propagates_stolen;
        Alcotest.test_case "call" `Quick test_call;
        Alcotest.test_case "parallel_for coverage" `Quick
          test_parallel_for_covers_range;
        Alcotest.test_case "parallel_for empty" `Quick test_parallel_for_empty;
        Alcotest.test_case "parallel_reduce" `Quick test_parallel_reduce;
        Alcotest.test_case "both" `Quick test_both;
        Alcotest.test_case "spawn stats" `Quick test_stats_spawns;
        Alcotest.test_case "stats consistency" `Slow
          test_stats_accounting_consistency;
        Alcotest.test_case "max pool depth" `Quick test_max_pool_depth_stat;
        Alcotest.test_case "workers and ids" `Quick test_num_workers_and_ids;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "mode round trip" `Quick test_mode_round_trip;
        Alcotest.test_case "relaxed config validation" `Quick
          test_relaxed_config_validation;
        Alcotest.test_case "spawn rejected on relaxed" `Quick
          test_spawn_rejected_on_relaxed;
        Alcotest.test_case "relaxed stats and invariants" `Slow
          test_relaxed_stats_and_invariants;
        Alcotest.test_case "overflow unwind all modes" `Quick
          test_pool_overflow_unwind_all_modes;
        Alcotest.test_case "stress kernel checksum" `Slow
          test_stress_kernel_matches_serial;
        Alcotest.test_case "steal policies complete" `Slow
          test_steal_policies_complete;
        Alcotest.test_case "steal policies steal" `Slow
          test_steal_policies_do_steal;
        QCheck_alcotest.to_alcotest qcheck_parallel_reduce_matches_fold;
      ] );
  ]
