(* Property tests for the topology layer behind hierarchical stealing.

   The invariants the Hierarchical selector leans on are structural:
   every worker must be reachable from every other at the outermost
   ring, the probe rings must nest (so widening the radius never loses
   a candidate), and ring membership must agree exactly with the
   pairwise distance function. QCheck generates arbitrary ragged
   socket/core/SMT shapes; a handful of unit tests pin the concrete
   grammar and the legacy [make] mapping on top. *)

module Topology = Wool_policy.Topology
module Hier = Wool_policy.Hier
module Select = Wool_policy.Select
module Rng = Wool_util.Rng

(* Arbitrary ragged machines: 1-4 sockets, each 1-4 cores, each core
   1-3 SMT threads — up to 48 workers, covering every distance class. *)
let gen_spec =
  QCheck.Gen.(
    let socket = list_size (int_range 1 4) (int_range 1 3) in
    list_size (int_range 1 4) socket >|= fun sockets ->
    Array.of_list (List.map Array.of_list sockets))

let arb_topo =
  QCheck.make
    ~print:(fun spec -> Topology.name (Topology.of_spec spec))
    gen_spec

let sorted_ascending a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then ok := false
  done;
  !ok

(* Every worker reaches every other worker at the outermost ring. *)
let prop_every_worker_reachable =
  QCheck.Test.make ~name:"topology: machine ring reaches every worker"
    ~count:200 arb_topo (fun spec ->
      let t = Topology.of_spec spec in
      let n = Topology.workers t in
      let ok = ref true in
      for w = 0 to n - 1 do
        let ring = Topology.peers t w ~level:Topology.levels in
        if Array.length ring <> n - 1 then ok := false;
        if not (sorted_ascending ring) then ok := false;
        Array.iter (fun v -> if v = w then ok := false) ring;
        for v = 0 to n - 1 do
          if v <> w && not (Array.exists (( = ) v) ring) then ok := false
        done
      done;
      !ok)

(* Rings nest as the radius widens, and membership agrees exactly with
   the distance function — so the near-first probe order visits victims
   in non-decreasing distance. *)
let prop_rings_nest_by_distance =
  QCheck.Test.make ~name:"topology: probe rings nest by distance" ~count:200
    arb_topo (fun spec ->
      let t = Topology.of_spec spec in
      let n = Topology.workers t in
      let ok = ref true in
      for w = 0 to n - 1 do
        for level = 1 to Topology.levels do
          let ring = Topology.peers t w ~level in
          Array.iter
            (fun v ->
              let d = Topology.distance t w v in
              if d < 1 || d > level then ok := false)
            ring;
          for v = 0 to n - 1 do
            let d = Topology.distance t w v in
            let inside = Array.exists (( = ) v) ring in
            if d >= 1 && d <= level && not inside then ok := false
          done;
          if level > 1 then
            (* strict nesting: the narrower ring is a subset *)
            Array.iter
              (fun v ->
                if not (Array.exists (( = ) v) ring) then ok := false)
              (Topology.peers t w ~level:(level - 1))
        done
      done;
      !ok)

let prop_distance_symmetric =
  QCheck.Test.make ~name:"topology: distance symmetric and reflexive"
    ~count:200 arb_topo (fun spec ->
      let t = Topology.of_spec spec in
      let n = Topology.workers t in
      let ok = ref true in
      for a = 0 to n - 1 do
        if Topology.distance t a a <> 0 then ok := false;
        for b = 0 to n - 1 do
          if Topology.distance t a b <> Topology.distance t b a then
            ok := false;
          if a <> b && Topology.distance t a b = 0 then ok := false
        done
      done;
      !ok)

let prop_name_roundtrip =
  QCheck.Test.make ~name:"topology: name/of_name roundtrip" ~count:200
    arb_topo (fun spec ->
      let t = Topology.of_spec spec in
      match Topology.of_name (Topology.name t) with
      | None -> false
      | Some t' ->
          Topology.name t' = Topology.name t
          && Topology.workers t' = Topology.workers t
          && Topology.cores t' = Topology.cores t
          && Topology.sockets t' = Topology.sockets t)

(* A hierarchical prober with no random escalation and minimal budgets
   must still, through failure-driven widening alone, end up offering
   every other worker as a victim. *)
let prop_escalation_reaches_machine =
  QCheck.Test.make ~name:"hier: escalation reaches the whole machine"
    ~count:100 arb_topo (fun spec ->
      let t = Topology.of_spec spec in
      let n = Topology.workers t in
      if n <= 1 then true
      else begin
        let hier =
          Hier.fixed ~probes:[| 1; 1 |] ~escalate_pct:[| 0; 0 |] t
        in
        let st =
          Select.make (Wool_policy.Selector.Hierarchical hier) ~self:0 ()
        in
        let rng = Rng.make 42 in
        let seen = Hashtbl.create 16 in
        (* enough failed probes to climb every ring and then coupon-collect
           the outermost one *)
        for _ = 1 to 200 * n do
          (match Select.next st ~rng ~n with
          | Some v -> Hashtbl.replace seen v ()
          | None -> ());
          Select.on_failure st
        done;
        Hashtbl.length seen = n - 1
        && Select.hier_level st = Some Topology.levels
      end)

(* ---- concrete pins ---- *)

let test_of_spec_mapping () =
  let t = Topology.of_spec [| [| 2; 1 |]; [| 1; 1; 1 |] |] in
  Alcotest.(check int) "workers" 6 (Topology.workers t);
  Alcotest.(check int) "cores" 5 (Topology.cores t);
  Alcotest.(check int) "sockets" 2 (Topology.sockets t);
  Alcotest.(check (list int)) "socket map" [ 0; 0; 0; 1; 1; 1 ]
    (List.init 6 (Topology.socket_of t));
  Alcotest.(check (list int)) "core map" [ 0; 0; 1; 2; 3; 4 ]
    (List.init 6 (Topology.core_of t));
  (* SMT siblings are distance 1, socket peers 2, cross-socket 3 *)
  Alcotest.(check int) "smt sibling" 1 (Topology.distance t 0 1);
  Alcotest.(check int) "socket peer" 2 (Topology.distance t 0 2);
  Alcotest.(check int) "cross socket" 3 (Topology.distance t 0 3)

(* [make ~sockets] must keep the simulator's historical worker→socket
   formula: socket_of wid = wid * sockets / workers. *)
let test_make_matches_legacy_formula () =
  List.iter
    (fun (workers, sockets) ->
      let t = Topology.make ~sockets ~workers () in
      for wid = 0 to workers - 1 do
        Alcotest.(check int)
          (Printf.sprintf "w=%d p=%d s=%d" workers sockets wid)
          (wid * sockets / workers)
          (Topology.socket_of t wid)
      done)
    [ (16, 4); (32, 4); (64, 4); (7, 3); (5, 2); (1, 1) ];
  (* more sockets than workers clamps to one worker per socket *)
  let t = Topology.make ~sockets:8 ~workers:3 () in
  Alcotest.(check int) "clamped sockets" 3 (Topology.sockets t);
  Alcotest.(check (list int)) "clamped map" [ 0; 1; 2 ]
    (List.init 3 (Topology.socket_of t))

let test_make_smt_widths () =
  let t = Topology.make ~sockets:2 ~smt:2 ~workers:10 () in
  Alcotest.(check int) "workers" 10 (Topology.workers t);
  Alcotest.(check int) "cores" 6 (Topology.cores t);
  (* 5 workers per socket over smt-2 cores: the last core is ragged *)
  Alcotest.(check string) "name" "2.2.1+2.2.1" (Topology.name t);
  (* odd block: 5 workers over smt-2 cores gives a ragged last core *)
  let t = Topology.make ~sockets:1 ~smt:2 ~workers:5 () in
  Alcotest.(check string) "ragged name" "2.2.1" (Topology.name t)

let test_name_grammar () =
  let check s =
    match Topology.of_name s with
    | None -> Alcotest.failf "of_name %S rejected" s
    | Some t -> Alcotest.(check string) s s (Topology.name t)
  in
  List.iter check [ "4"; "4+4"; "2x2"; "2x2+2x2"; "2.1.1"; "3+2x4+1.2" ];
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true
      (Topology.of_name s = None))
    [ ""; "0"; "4+"; "x2"; "2x0"; "a+b"; "1..2" ]

let test_invalid_specs () =
  let rejects name spec =
    Alcotest.check_raises name
      (Invalid_argument
         (match spec with
         | [||] -> "Topology.of_spec: no sockets"
         | s when Array.exists (fun c -> Array.length c = 0) s ->
             "Topology.of_spec: empty socket"
         | _ -> "Topology.of_spec: core width must be positive"))
      (fun () -> ignore (Topology.of_spec spec))
  in
  rejects "no sockets" [||];
  rejects "empty socket" [| [| 1 |]; [||] |];
  rejects "zero width" [| [| 1; 0 |] |]

let suite =
  [
    ( "topology",
      [
        QCheck_alcotest.to_alcotest prop_every_worker_reachable;
        QCheck_alcotest.to_alcotest prop_rings_nest_by_distance;
        QCheck_alcotest.to_alcotest prop_distance_symmetric;
        QCheck_alcotest.to_alcotest prop_name_roundtrip;
        QCheck_alcotest.to_alcotest prop_escalation_reaches_machine;
        Alcotest.test_case "of_spec mapping" `Quick test_of_spec_mapping;
        Alcotest.test_case "make legacy formula" `Quick
          test_make_matches_legacy_formula;
        Alcotest.test_case "make smt widths" `Quick test_make_smt_widths;
        Alcotest.test_case "name grammar" `Quick test_name_grammar;
        Alcotest.test_case "invalid specs" `Quick test_invalid_specs;
      ] );
  ]
