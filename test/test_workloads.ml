module Tt = Wool_ir.Task_tree
module W = Wool_workloads.Workload
module Fib = Wool_workloads.Fib
module Stress = Wool_workloads.Stress
module Mm = Wool_workloads.Mm
module Ssf = Wool_workloads.Ssf
module Rng = Wool_util.Rng

(* ---- fib ---- *)

let test_fib_serial_values () =
  Alcotest.(check (list int)) "first values"
    [ 0; 1; 1; 2; 3; 5; 8; 13 ]
    (List.init 8 Fib.serial)

let test_fib_wool_matches_serial () =
  Test_util.with_pool ~workers:2 (fun pool ->
      for n = 0 to 18 do
        Alcotest.(check int) "fib" (Fib.serial n)
          (Wool.run pool (fun ctx -> Fib.wool ctx n))
      done)

let test_fib_tree_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Fib.tree: negative input")
    (fun () -> ignore (Fib.tree (-1)))

let test_fib_tree_granularity () =
  (* fib should be extremely fine grained: G_T around 13-20 cycles *)
  let t = Fib.tree 20 in
  let g = float_of_int (Tt.work t) /. float_of_int (Tt.n_tasks t) in
  Alcotest.(check bool) (Printf.sprintf "fine grained (%.1f)" g) true
    (g > 5.0 && g < 40.0)

(* ---- stress ---- *)

let test_stress_tree_shape () =
  let t = Stress.tree ~height:5 ~leaf_iters:256 in
  Alcotest.(check int) "tasks" 31 (Tt.n_tasks t);
  Alcotest.(check int) "depth" 5 (Tt.depth t);
  (* 32 leaves at 512 cycles plus small node overheads *)
  let leaf_total = 32 * 512 in
  Alcotest.(check bool) "leaf work dominates" true
    (Tt.work t >= leaf_total && Tt.work t < leaf_total + 1000);
  (* one DAG node pair per level *)
  Alcotest.(check int) "dag nodes" 6 (Tt.distinct_nodes t)

let test_stress_tree_height_zero () =
  let t = Stress.tree ~height:0 ~leaf_iters:100 in
  Alcotest.(check int) "single leaf" 200 (Tt.work t);
  Alcotest.(check int) "no tasks" 0 (Tt.n_tasks t)

let test_stress_tree_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Stress.tree: negative height")
    (fun () -> ignore (Stress.tree ~height:(-1) ~leaf_iters:1))

let test_stress_checksum_deterministic () =
  Stress.reset_leaf_result ();
  Stress.serial ~height:4 ~leaf_iters:64;
  let a = Stress.leaf_result () in
  Stress.reset_leaf_result ();
  Stress.serial ~height:4 ~leaf_iters:64;
  Alcotest.(check int) "deterministic" a (Stress.leaf_result ())

(* ---- mm ---- *)

let test_mm_serial_identity () =
  (* multiplying by the identity returns the original *)
  let n = 8 in
  let rng = Rng.make 5 in
  let a = Mm.random_matrix rng n in
  let id = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0)) in
  Alcotest.(check bool) "a*I = a" true (Mm.equal (Mm.serial a id) a);
  Alcotest.(check bool) "I*a = a" true (Mm.equal (Mm.serial id a) a)

let test_mm_known_product () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let expected = [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |] in
  Alcotest.(check bool) "2x2" true (Mm.equal (Mm.serial a b) expected)

let test_mm_wool_matches_serial () =
  let rng = Rng.make 11 in
  let a = Mm.random_matrix rng 24 and b = Mm.random_matrix rng 24 in
  let expected = Mm.serial a b in
  Test_util.with_pool ~workers:3 (fun pool ->
      let got = Wool.run pool (fun ctx -> Mm.wool ctx a b) in
      Alcotest.(check bool) "parallel product equal" true (Mm.equal got expected))

let test_mm_equal_negative () =
  let a = [| [| 1.0 |] |] and b = [| [| 1.1 |] |] in
  Alcotest.(check bool) "differs" false (Mm.equal a b);
  Alcotest.(check bool) "eps tolerance" true (Mm.equal ~eps:0.2 a b)

let test_mm_tree () =
  let t = Mm.tree 16 in
  Alcotest.(check int) "row tasks" 15 (Tt.n_tasks t);
  Alcotest.(check bool) "work about n*row_work" true
    (Tt.work t >= 16 * Mm.row_work 16);
  Alcotest.check_raises "bad size" (Invalid_argument "Mm.tree: size must be positive")
    (fun () -> ignore (Mm.tree 0));
  Alcotest.(check int) "loop leaves" 16 (Array.length (Mm.loop_leaves 16))

let test_mm_row_work_scales () =
  Alcotest.(check bool) "quadratic-ish" true
    (Mm.row_work 128 > 3 * Mm.row_work 64)

(* ---- ssf ---- *)

let test_ssf_subject () =
  Alcotest.(check string) "s0" "a" (Ssf.subject 0);
  Alcotest.(check string) "s1" "b" (Ssf.subject 1);
  Alcotest.(check string) "s2" "ba" (Ssf.subject 2);
  Alcotest.(check string) "s3" "bab" (Ssf.subject 3);
  Alcotest.(check string) "s4" "babba" (Ssf.subject 4);
  (* lengths follow the Fibonacci sequence *)
  let rec f n = if n < 2 then 1 else f (n - 1) + f (n - 2) in
  for n = 0 to 14 do
    Alcotest.(check int) "length" (f n) (String.length (Ssf.subject n))
  done

let test_ssf_known_string () =
  let r = Ssf.serial "abab" in
  Alcotest.(check (array (pair int int)))
    "abab"
    [| (2, 2); (3, 1); (0, 2); (1, 1) |]
    r

let test_ssf_wool_matches_serial () =
  let s = Ssf.subject 9 in
  let expected = Ssf.serial s in
  Test_util.with_pool ~workers:3 (fun pool ->
      let got = Wool.run pool (fun ctx -> Ssf.wool ctx s) in
      Alcotest.(check (array (pair int int))) "parallel equals serial" expected got)

let test_ssf_position_comparisons () =
  let s = Ssf.subject 8 in
  let comps = Ssf.position_comparisons s in
  Alcotest.(check int) "one per position" (String.length s) (Array.length comps);
  Array.iter
    (fun c ->
      (* at least one comparison against every other position *)
      Alcotest.(check bool) "lower bound" true (c >= String.length s - 1))
    comps

let test_ssf_tree_work_matches_comparisons () =
  let n = 8 in
  let comps = Array.fold_left ( + ) 0 (Ssf.position_comparisons (Ssf.subject n)) in
  let t = Ssf.tree n in
  Alcotest.(check bool) "2 cycles per comparison plus overheads" true
    (Tt.work t >= 2 * comps)

(* ---- workload descriptors ---- *)

let test_workload_root_reps () =
  let wl = W.mm ~reps:5 8 in
  let region_tasks = Tt.n_tasks wl.W.region in
  Alcotest.(check int) "root repeats region" (5 * region_tasks)
    (Tt.n_tasks (W.root wl));
  Alcotest.(check int) "work scales" (5 * Tt.work wl.W.region)
    (Tt.work (W.root wl))

let test_workload_label () =
  Alcotest.(check string) "label" "mm(8)" (W.label (W.mm ~reps:1 8));
  Alcotest.(check string) "stress label" "stress(256,7)"
    (W.label (W.stress ~reps:1 ~height:7 ~leaf_iters:256 ()))

let test_workload_validation () =
  Alcotest.check_raises "reps" (Invalid_argument "Workload.v: reps must be positive")
    (fun () -> ignore (W.v ~name:"x" ~params:"" ~reps:0 (Tt.leaf 1)))

let test_workload_loop_leaves () =
  let wl = W.ssf ~reps:1 8 in
  (match wl.W.loop_leaves with
  | Some l -> Alcotest.(check int) "leaves" (String.length (Ssf.subject 8)) (Array.length l)
  | None -> Alcotest.fail "ssf should expose loop leaves");
  let wl = W.stress ~reps:1 ~height:3 ~leaf_iters:8 () in
  Alcotest.(check bool) "stress is not a loop" true (wl.W.loop_leaves = None)

let test_table1_grid_builds () =
  let grid = W.table1_grid () in
  Alcotest.(check bool) "non-trivial" true (List.length grid >= 15);
  List.iter
    (fun wl -> Alcotest.(check bool) (W.label wl ^ " has work") true (Tt.work wl.W.region > 0))
    grid

let suite =
  [
    ( "workloads",
      [
        Alcotest.test_case "fib serial" `Quick test_fib_serial_values;
        Alcotest.test_case "fib wool" `Quick test_fib_wool_matches_serial;
        Alcotest.test_case "fib tree negative" `Quick test_fib_tree_negative;
        Alcotest.test_case "fib granularity" `Quick test_fib_tree_granularity;
        Alcotest.test_case "stress tree shape" `Quick test_stress_tree_shape;
        Alcotest.test_case "stress height 0" `Quick test_stress_tree_height_zero;
        Alcotest.test_case "stress invalid" `Quick test_stress_tree_invalid;
        Alcotest.test_case "stress checksum" `Quick
          test_stress_checksum_deterministic;
        Alcotest.test_case "mm identity" `Quick test_mm_serial_identity;
        Alcotest.test_case "mm known product" `Quick test_mm_known_product;
        Alcotest.test_case "mm wool" `Quick test_mm_wool_matches_serial;
        Alcotest.test_case "mm equal eps" `Quick test_mm_equal_negative;
        Alcotest.test_case "mm tree" `Quick test_mm_tree;
        Alcotest.test_case "mm row_work" `Quick test_mm_row_work_scales;
        Alcotest.test_case "ssf subject" `Quick test_ssf_subject;
        Alcotest.test_case "ssf known string" `Quick test_ssf_known_string;
        Alcotest.test_case "ssf wool" `Quick test_ssf_wool_matches_serial;
        Alcotest.test_case "ssf comparisons" `Quick test_ssf_position_comparisons;
        Alcotest.test_case "ssf tree work" `Quick
          test_ssf_tree_work_matches_comparisons;
        Alcotest.test_case "workload reps" `Quick test_workload_root_reps;
        Alcotest.test_case "workload label" `Quick test_workload_label;
        Alcotest.test_case "workload validation" `Quick test_workload_validation;
        Alcotest.test_case "workload loop leaves" `Quick
          test_workload_loop_leaves;
        Alcotest.test_case "table1 grid" `Slow test_table1_grid_builds;
      ] );
  ]
