module C = Wool_cactus.Cactus

let rec fib_serial n = if n < 2 then n else fib_serial (n - 1) + fib_serial (n - 2)

(* fib in steal-parent style: spawn both children into promises, sync,
   read. *)
let rec fib ctx n =
  if n < 2 then n
  else begin
    let a = C.promise () and b = C.promise () in
    C.spawn_into ctx a (fun ctx -> fib ctx (n - 1));
    C.spawn_into ctx b (fun ctx -> fib ctx (n - 2));
    C.sync ctx;
    C.read a + C.read b
  end

let test_fib_serial_pool () =
  C.with_pool ~workers:1 (fun pool ->
      for n = 0 to 18 do
        Alcotest.(check int) (Printf.sprintf "fib %d" n) (fib_serial n)
          (C.run pool (fun ctx -> fib ctx n))
      done)

let test_fib_parallel_pool () =
  List.iter
    (fun workers ->
      C.with_pool ~workers (fun pool ->
          Alcotest.(check int)
            (Printf.sprintf "%d workers" workers)
            (fib_serial 20)
            (C.run pool (fun ctx -> fib ctx 20))))
    [ 2; 4 ]

let test_repeated_runs () =
  C.with_pool ~workers:2 (fun pool ->
      for n = 5 to 14 do
        Alcotest.(check int) "fib" (fib_serial n)
          (C.run pool (fun ctx -> fib ctx n))
      done)

let test_spawn_loop_constant_space () =
  (* §I: for (...) spawn foo(p); sync — constant task-pool space in a
     steal-parent system, measured for real. *)
  C.with_pool ~workers:2 (fun pool ->
      List.iter
        (fun n ->
          C.reset_stats pool;
          let counter = Atomic.make 0 in
          C.run pool (fun ctx ->
              for _ = 1 to n do
                C.spawn ctx (fun _ -> Atomic.incr counter)
              done;
              C.sync ctx);
          Alcotest.(check int) "all ran" n (Atomic.get counter);
          let s = C.stats pool in
          Alcotest.(check int) "spawns" n s.C.spawns;
          Alcotest.(check bool)
            (Printf.sprintf "pool depth %d constant for n=%d"
               s.C.max_pool_depth n)
            true
            (s.C.max_pool_depth <= 2))
        [ 64; 512; 4096 ])

let test_wool_spawn_loop_linear_space_contrast () =
  (* the same loop on the steal-child runtime holds n descriptors *)
  Test_util.with_pool ~workers:1 ~publicity:Wool.All_private (fun pool ->
      let n = 512 in
      let counter = ref 0 in
      Wool.run pool (fun ctx ->
          let futs = List.init n (fun _ -> Wool.spawn ctx (fun _ -> incr counter)) in
          List.iter (Wool.join ctx) (List.rev futs));
      Alcotest.(check int) "all ran" n !counter)

let test_sequential_semantics_of_spawn () =
  (* with one worker nothing is stolen: children run immediately, in
     order, before the code after the spawn *)
  C.with_pool ~workers:1 (fun pool ->
      let log = ref [] in
      C.run pool (fun ctx ->
          log := 1 :: !log;
          C.spawn ctx (fun _ -> log := 2 :: !log);
          log := 3 :: !log;
          C.spawn ctx (fun _ -> log := 4 :: !log);
          C.sync ctx;
          log := 5 :: !log);
      Alcotest.(check (list int)) "steal-parent order" [ 1; 2; 3; 4; 5 ]
        (List.rev !log))

let test_nested_sync () =
  C.with_pool ~workers:3 (fun pool ->
      let total =
        C.run pool (fun ctx ->
            let ps = List.init 8 (fun i -> (i, C.promise ())) in
            List.iter
              (fun (i, p) ->
                C.spawn_into ctx p (fun ctx ->
                    let q = C.promise () in
                    C.spawn_into ctx q (fun _ -> i * i);
                    C.sync ctx;
                    C.read q))
              ps;
            C.sync ctx;
            List.fold_left (fun acc (_, p) -> acc + C.read p) 0 ps)
      in
      Alcotest.(check int) "sum of squares" 140 total)

let test_unsynced_children_raise () =
  C.with_pool ~workers:1 (fun pool ->
      match
        C.run pool (fun ctx -> C.spawn ctx (fun _ -> ()) (* no sync! *))
      with
      | exception Failure msg ->
          Alcotest.(check string) "diagnostic"
            "Cactus: task returned with unsynced children" msg
      | () -> Alcotest.fail "expected a failure")

let test_exception_propagates () =
  C.with_pool ~workers:2 (fun pool ->
      match
        C.run pool (fun ctx ->
            C.spawn ctx (fun _ -> failwith "child boom");
            C.sync ctx)
      with
      | exception Failure msg -> Alcotest.(check string) "msg" "child boom" msg
      | () -> Alcotest.fail "expected exception");
  (* the pool stays usable afterwards *)
  C.with_pool ~workers:2 (fun pool ->
      Alcotest.(check int) "recovers" 55 (C.run pool (fun ctx -> fib ctx 10)))

let test_promise_read_before_fulfilment () =
  let p = C.promise () in
  Alcotest.check_raises "unfulfilled"
    (Invalid_argument "Cactus.read: promise not fulfilled (sync first)")
    (fun () -> ignore (C.read (p : int C.promise)))

let test_create_validation () =
  Alcotest.check_raises "workers"
    (Invalid_argument "Cactus.create: workers must be positive") (fun () ->
      ignore (C.create ~workers:0 ()))

let test_stats () =
  C.with_pool ~workers:1 (fun pool ->
      C.reset_stats pool;
      ignore (C.run pool (fun ctx -> fib ctx 10) : int);
      let s = C.stats pool in
      (* fib spawns twice per internal node *)
      let rec internal n = if n < 2 then 0 else 1 + internal (n - 1) + internal (n - 2) in
      Alcotest.(check int) "spawns" (2 * internal 10) s.C.spawns;
      Alcotest.(check int) "no steals on one worker" 0 s.C.steals;
      Alcotest.(check int) "no suspensions on one worker" 0 s.C.suspensions;
      Alcotest.(check int) "workers" 1 (C.num_workers pool))

let test_parallel_stress_checksum () =
  let module S = Wool_workloads.Stress in
  S.reset_leaf_result ();
  S.serial ~height:6 ~leaf_iters:64;
  let expected = S.leaf_result () in
  C.with_pool ~workers:4 (fun pool ->
      S.reset_leaf_result ();
      C.run pool (fun ctx ->
          let rec tree ctx h =
            if h = 0 then S.serial ~height:0 ~leaf_iters:64
            else begin
              C.spawn ctx (fun ctx -> tree ctx (h - 1));
              C.spawn ctx (fun ctx -> tree ctx (h - 1));
              C.sync ctx
            end
          in
          tree ctx 6);
      Alcotest.(check int) "checksum" expected (S.leaf_result ()))

let suite =
  [
    ( "cactus",
      [
        Alcotest.test_case "fib one worker" `Quick test_fib_serial_pool;
        Alcotest.test_case "fib parallel" `Slow test_fib_parallel_pool;
        Alcotest.test_case "repeated runs" `Quick test_repeated_runs;
        Alcotest.test_case "spawn loop O(1) space" `Quick
          test_spawn_loop_constant_space;
        Alcotest.test_case "steal-child O(n) contrast" `Quick
          test_wool_spawn_loop_linear_space_contrast;
        Alcotest.test_case "sequential spawn order" `Quick
          test_sequential_semantics_of_spawn;
        Alcotest.test_case "nested sync" `Slow test_nested_sync;
        Alcotest.test_case "unsynced children" `Quick test_unsynced_children_raise;
        Alcotest.test_case "exception propagation" `Slow test_exception_propagates;
        Alcotest.test_case "promise before sync" `Quick
          test_promise_read_before_fulfilment;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "stress checksum" `Slow test_parallel_stress_checksum;
      ] );
  ]
