(* Cache-conscious layout regression tests: the padding machinery itself,
   and the padded pieces of the direct stack and the pool. *)

module Layout = Wool_util.Layout
module Ds = Wool_deque.Direct_stack

let test_machinery () =
  Alcotest.(check (list string)) "Layout.check" [] (Layout.check ())

let test_padded_blocks_are_full_lines () =
  (* the invariant the design rests on: a padded block is a whole number
     of cache lines (>= 1), so two distinct padded blocks can never have
     their first fields on the same line *)
  let a = Layout.padded_atomic 1 in
  let b = Layout.padded_atomic 2 in
  Alcotest.(check bool) "a padded" true (Layout.is_padded a);
  Alcotest.(check bool) "b padded" true (Layout.is_padded b);
  Alcotest.(check bool) "full line" true
    (Layout.size_words a >= Layout.cache_line_words);
  Alcotest.(check int) "values independent" 3 (Atomic.get a + Atomic.get b)

let test_direct_stack_layout () =
  List.iter
    (fun publicity ->
      let t = Ds.create ~capacity:64 ~publicity ~dummy:(-1) () in
      Alcotest.(check (list string)) "direct stack padded" []
        (Ds.layout_check t))
    [ Ds.All_private; Ds.All_public; Ds.Adaptive 4 ]

let test_pool_layout_all_modes () =
  List.iter
    (fun (name, mode) ->
      Test_util.with_pool ~workers:2 ~mode ~capacity:128 (fun pool ->
          Alcotest.(check (list string)) (name ^ " layout") []
            (Wool.layout_check pool)))
    [
      ("private", Wool.Private);
      ("task_specific", Wool.Task_specific);
      ("swap_generic", Wool.Swap_generic);
      ("locked", Wool.Locked);
      ("clev", Wool.Clev);
    ]

let test_layout_survives_work () =
  (* padding is a property of the blocks, not of a fresh pool: still true
     after the GC has moved things around under real scheduling *)
  Test_util.with_pool ~workers:2 ~capacity:4096 (fun pool ->
      let rec fib ctx n =
        if n < 2 then n
        else begin
          let b = Wool.spawn ctx (fun ctx -> fib ctx (n - 2)) in
          let a = fib ctx (n - 1) in
          a + Wool.join ctx b
        end
      in
      ignore (Wool.run pool (fun ctx -> fib ctx 18) : int);
      Gc.compact ();
      Alcotest.(check (list string)) "layout after work + compaction" []
        (Wool.layout_check pool))

let suite =
  [
    ( "layout",
      [
        Alcotest.test_case "padding machinery" `Quick test_machinery;
        Alcotest.test_case "padded blocks are full lines" `Quick
          test_padded_blocks_are_full_lines;
        Alcotest.test_case "direct stack layout" `Quick
          test_direct_stack_layout;
        Alcotest.test_case "pool layout all modes" `Quick
          test_pool_layout_all_modes;
        Alcotest.test_case "layout survives work" `Quick
          test_layout_survives_work;
      ] );
  ]
