module Nq = Wool_workloads.Nqueens
module Kp = Wool_workloads.Knapsack
module Tt = Wool_ir.Task_tree
module Rng = Wool_util.Rng
module E = Wool_sim.Engine
module P = Wool_sim.Policy

(* ---- nqueens ---- *)

let test_nqueens_known_values () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int) (Printf.sprintf "n=%d" n) expected (Nq.serial n))
    Nq.known

let test_nqueens_wool_matches_serial () =
  Test_util.with_pool ~workers:3 (fun pool ->
      List.iter
        (fun (n, expected) ->
          Alcotest.(check int)
            (Printf.sprintf "wool n=%d" n)
            expected
            (Wool.run pool (fun ctx -> Nq.wool ctx n)))
        Nq.known)

let test_nqueens_cutoff_variants () =
  Test_util.with_pool ~workers:2 (fun pool ->
      List.iter
        (fun cutoff ->
          Alcotest.(check int)
            (Printf.sprintf "cutoff %d" cutoff)
            92
            (Wool.run pool (fun ctx -> Nq.wool ctx ~cutoff 8)))
        [ 0; 1; 2; 5; 100 ])

let test_nqueens_tree_runs () =
  let t = Nq.tree 8 in
  Alcotest.(check bool) "has tasks" true (Tt.n_tasks t > 10);
  let r = E.run ~policy:P.wool ~workers:4 t in
  Alcotest.(check int) "conserved" (Tt.work t) r.E.work

(* ---- knapsack ---- *)

(* exhaustive reference without any bounding *)
let brute items ~capacity =
  let n = Array.length items in
  let rec go i cap =
    if i = n then 0
    else begin
      let skip = go (i + 1) cap in
      let it = items.(i) in
      if it.Kp.weight <= cap then
        max skip (it.Kp.value + go (i + 1) (cap - it.Kp.weight))
      else skip
    end
  in
  go 0 capacity

let test_knapsack_vs_brute_force () =
  List.iter
    (fun seed ->
      let rng = Rng.make seed in
      let items = Kp.random_items rng ~n:14 ~max_weight:25 in
      let capacity = 60 in
      Alcotest.(check int)
        (Printf.sprintf "seed %d" seed)
        (brute items ~capacity)
        (Kp.serial items ~capacity))
    [ 1; 2; 3; 4; 5 ]

let test_knapsack_wool_matches_serial () =
  Test_util.with_pool ~workers:3 (fun pool ->
      List.iter
        (fun seed ->
          let rng = Rng.make seed in
          let items = Kp.random_items rng ~n:18 ~max_weight:30 in
          let capacity = 100 in
          Alcotest.(check int)
            (Printf.sprintf "seed %d" seed)
            (Kp.serial items ~capacity)
            (Wool.run pool (fun ctx -> Kp.wool ctx items ~capacity)))
        [ 7; 8; 9 ])

let test_knapsack_density_sorted () =
  let rng = Rng.make 3 in
  let items = Kp.random_items rng ~n:50 ~max_weight:20 in
  let density it = float_of_int it.Kp.value /. float_of_int it.Kp.weight in
  for i = 0 to Array.length items - 2 do
    Alcotest.(check bool) "sorted by density" true
      (density items.(i) >= density items.(i + 1) -. 1e-9)
  done

let test_knapsack_zero_capacity () =
  let rng = Rng.make 1 in
  let items = Kp.random_items rng ~n:10 ~max_weight:5 in
  Alcotest.(check int) "nothing fits" 0 (Kp.serial items ~capacity:0)

let test_knapsack_tree_runs () =
  let t = Kp.tree ~seed:5 ~n:20 ~capacity:80 () in
  Alcotest.(check bool) "has work" true (Tt.work t > 0);
  let r = E.run ~policy:P.cilk ~workers:3 t in
  Alcotest.(check int) "conserved" (Tt.work t) r.E.work;
  (* deterministic construction *)
  let t2 = Kp.tree ~seed:5 ~n:20 ~capacity:80 () in
  Alcotest.(check int) "deterministic" (Tt.work t) (Tt.work t2)

(* ---- new combinators ---- *)

let test_parallel_map () =
  Test_util.with_pool ~workers:3 (fun pool ->
      let xs = Array.init 500 Fun.id in
      let got =
        Wool.run pool (fun ctx -> Wool.parallel_map ctx ~grain:7 (fun x -> x * x) xs)
      in
      Alcotest.(check (array int)) "squares" (Array.map (fun x -> x * x) xs) got;
      let empty =
        Wool.run pool (fun ctx -> Wool.parallel_map ctx (fun x -> x) [||])
      in
      Alcotest.(check (array int)) "empty" [||] empty)

let test_parallel_init () =
  Test_util.with_pool ~workers:2 (fun pool ->
      let got = Wool.run pool (fun ctx -> Wool.parallel_init ctx 100 (fun i -> 2 * i)) in
      Alcotest.(check (array int)) "init" (Array.init 100 (fun i -> 2 * i)) got;
      Wool.run pool (fun ctx ->
          try
            ignore (Wool.parallel_init ctx (-1) Fun.id);
            Alcotest.fail "expected Invalid_argument"
          with Invalid_argument _ -> ()))

let base_suite =
  [
    ( "extra_workloads",
      [
        Alcotest.test_case "nqueens known values" `Quick test_nqueens_known_values;
        Alcotest.test_case "nqueens wool" `Slow test_nqueens_wool_matches_serial;
        Alcotest.test_case "nqueens cutoffs" `Quick test_nqueens_cutoff_variants;
        Alcotest.test_case "nqueens tree" `Quick test_nqueens_tree_runs;
        Alcotest.test_case "knapsack vs brute force" `Quick
          test_knapsack_vs_brute_force;
        Alcotest.test_case "knapsack wool" `Slow test_knapsack_wool_matches_serial;
        Alcotest.test_case "knapsack density order" `Quick
          test_knapsack_density_sorted;
        Alcotest.test_case "knapsack zero capacity" `Quick
          test_knapsack_zero_capacity;
        Alcotest.test_case "knapsack tree" `Quick test_knapsack_tree_runs;
        Alcotest.test_case "parallel_map" `Quick test_parallel_map;
        Alcotest.test_case "parallel_init" `Quick test_parallel_init;
      ] );
  ]

(* ---- mergesort ---- *)

module Sort = Wool_workloads.Sort

let test_sort_serial () =
  let rng = Wool_util.Rng.make 42 in
  List.iter
    (fun n ->
      let input = Array.init n (fun _ -> Wool_util.Rng.int rng 1000) in
      let sorted = Sort.serial input in
      Alcotest.(check bool) (Printf.sprintf "sorted n=%d" n) true
        (Sort.is_sorted sorted);
      let reference = Array.copy input in
      Array.sort compare reference;
      Alcotest.(check (array int)) "matches Array.sort" reference sorted;
      (* input untouched *)
      Alcotest.(check int) "input intact" (Array.length input) n)
    [ 0; 1; 2; 15; 16; 17; 100; 1000 ]

let test_sort_wool_matches_serial () =
  let rng = Wool_util.Rng.make 7 in
  let input = Array.init 5000 (fun _ -> Wool_util.Rng.int rng 100000) in
  let expected = Sort.serial input in
  Test_util.with_pool ~workers:3 (fun pool ->
      let got = Wool.run pool (fun ctx -> Sort.wool ctx input) in
      Alcotest.(check (array int)) "parallel sort" expected got)

let test_sort_wool_small_cutoff () =
  let rng = Wool_util.Rng.make 9 in
  let input = Array.init 500 (fun _ -> Wool_util.Rng.int rng 50) in
  Test_util.with_pool ~workers:2 (fun pool ->
      let got =
        Wool.run pool (fun ctx -> Sort.wool_handrolled ctx ~cutoff:8 input)
      in
      Alcotest.(check bool) "sorted with tiny cutoff" true (Sort.is_sorted got);
      let got = Wool.run pool (fun ctx -> Sort.wool ctx ~block:32 input) in
      Alcotest.(check bool) "sorted with tiny block" true (Sort.is_sorted got))

let test_sort_duplicates_and_negatives () =
  let input = [| 3; -1; 3; 0; -5; 3; 0 |] in
  Alcotest.(check (array int)) "dups"
    [| -5; -1; 0; 0; 3; 3; 3 |]
    (Sort.serial input)

let test_sort_tree () =
  let t = Sort.tree 1024 in
  let module Tt = Wool_ir.Task_tree in
  Alcotest.(check bool) "has tasks" true (Tt.n_tasks t > 10);
  (* merge work puts real cycles on internal nodes: parallelism is well
     below the leaf count *)
  let par = Wool_metrics.Span.parallelism ~overhead:0 t in
  Alcotest.(check bool)
    (Printf.sprintf "bounded parallelism (%.1f)" par)
    true
    (par < 64.0 && par > 2.0);
  Alcotest.check_raises "bad size" (Invalid_argument "Sort.tree: size must be positive")
    (fun () -> ignore (Sort.tree 0));
  let r = Wool_sim.Engine.run ~policy:Wool_sim.Policy.wool ~workers:4 t in
  Alcotest.(check int) "sim conserves work" (Tt.work t) r.Wool_sim.Engine.work

let test_sort_no_loop_form () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sort.loop_leaves 4);
       false
     with Invalid_argument _ -> true)

let sort_suite =
  ( "sort",
    [
      Alcotest.test_case "serial correctness" `Quick test_sort_serial;
      Alcotest.test_case "wool matches serial" `Quick test_sort_wool_matches_serial;
      Alcotest.test_case "tiny cutoff" `Quick test_sort_wool_small_cutoff;
      Alcotest.test_case "duplicates" `Quick test_sort_duplicates_and_negatives;
      Alcotest.test_case "tree model" `Quick test_sort_tree;
      Alcotest.test_case "no loop form" `Quick test_sort_no_loop_form;
    ] )

let suite = base_suite @ [ sort_suite ]
