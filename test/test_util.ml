(* Helpers shared across the runtime test suites; previously duplicated
   per file. *)

(* Short-hand pool constructors: [Wool.create]/[Wool.with_pool] take
   only a config now, and spelling out [Wool.Config.make] at every one
   of the suites' ~200 pool creations drowns the test in plumbing. *)
let config ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns ?seed
    ?trace ?trace_capacity ?policy ?faults ?watchdog_interval_ns
    ?watchdog_stalls ?injection_lanes ?injection_capacity ?admission ?server
    () =
  Wool.Config.make ?workers ?mode ?publicity ?capacity ?lock_mode
    ?idle_nap_ns ?seed ?trace ?trace_capacity ?policy ?faults
    ?watchdog_interval_ns ?watchdog_stalls ?injection_lanes
    ?injection_capacity ?admission ?server ()

let create ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns ?seed
    ?trace ?trace_capacity ?policy ?faults ?watchdog_interval_ns
    ?watchdog_stalls ?injection_lanes ?injection_capacity ?admission ?server
    () =
  Wool.create
    ~config:
      (config ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
         ?seed ?trace ?trace_capacity ?policy ?faults ?watchdog_interval_ns
         ?watchdog_stalls ?injection_lanes ?injection_capacity ?admission
         ?server ())
    ()

let with_pool ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
    ?seed ?trace ?trace_capacity ?policy ?faults ?watchdog_interval_ns
    ?watchdog_stalls ?injection_lanes ?injection_capacity ?admission ?server
    f =
  Wool.with_pool
    ~config:
      (config ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
         ?seed ?trace ?trace_capacity ?policy ?faults ?watchdog_interval_ns
         ?watchdog_stalls ?injection_lanes ?injection_capacity ?admission
         ?server ())
    f

(* Every pool mode, with a label for per-case messages. *)
let all_modes =
  [
    ("private", Wool.Private);
    ("task_specific", Wool.Task_specific);
    ("swap_generic", Wool.Swap_generic);
    ("locked", Wool.Locked);
    ("clev", Wool.Clev);
  ]

(* The canonical fork-join workload and its sequential oracle. *)
let rec fib ctx n =
  if n < 2 then n
  else begin
    let b = Wool.spawn ctx (fun ctx -> fib ctx (n - 2)) in
    let a = fib ctx (n - 1) in
    a + Wool.join ctx b
  end

let rec fib_serial n =
  if n < 2 then n else fib_serial (n - 1) + fib_serial (n - 2)

(* Spin-wait that also yields the timeslice: on a machine with fewer
   cores than domains the peer needs the CPU to make progress. *)
let await_flag flag =
  while Atomic.get flag < 0 do
    Domain.cpu_relax ();
    Unix.sleepf 0.0002
  done

(* Spin until [cond] holds or [timeout_ns] elapses (monotonic deadline:
   a wall-clock step must not cut it short); returns whether it held. *)
let spin_until ?(timeout_ns = 5_000_000_000) cond =
  let deadline = Wool_util.Clock.now_ns () + timeout_ns in
  let rec go () =
    if cond () then true
    else if Wool_util.Clock.now_ns () >= deadline then cond ()
    else begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0
