(* Helpers shared across the runtime test suites; previously duplicated
   per file. *)

(* Short-hand pool constructors: [Wool.create]/[Wool.with_pool] take
   only a config now, and spelling out [Wool.Config.make] at every one
   of the suites' ~200 pool creations drowns the test in plumbing. *)
let config ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns ?seed
    ?trace ?trace_capacity ?policy ?faults ?watchdog_interval_ns
    ?watchdog_stalls ?injection_lanes ?injection_capacity ?admission ?admission_target_ns
    ?server ?allow_relaxed () =
  (* Sweeping [all_modes] through these helpers should just work, so a
     relaxed mode opts itself in unless the test says otherwise. The
     production default (reject relaxed without the explicit flag) is
     covered by the Config.validate tests, which build configs directly. *)
  let allow_relaxed =
    match (allow_relaxed, mode) with
    | (Some _ as a), _ -> a
    | None, Some m -> Some (Wool.Mode.is_relaxed m)
    | None, None -> None
  in
  Wool.Config.make ?workers ?mode ?publicity ?capacity ?lock_mode
    ?idle_nap_ns ?seed ?trace ?trace_capacity ?policy ?faults
    ?watchdog_interval_ns ?watchdog_stalls ?injection_lanes
    ?injection_capacity ?admission ?admission_target_ns ?server
    ?allow_relaxed ()

let create ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns ?seed
    ?trace ?trace_capacity ?policy ?faults ?watchdog_interval_ns
    ?watchdog_stalls ?injection_lanes ?injection_capacity ?admission ?admission_target_ns
    ?server ?allow_relaxed () =
  Wool.create
    ~config:
      (config ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
         ?seed ?trace ?trace_capacity ?policy ?faults ?watchdog_interval_ns
         ?watchdog_stalls ?injection_lanes ?injection_capacity ?admission
         ?admission_target_ns ?server ?allow_relaxed ())
    ()

let with_pool ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
    ?seed ?trace ?trace_capacity ?policy ?faults ?watchdog_interval_ns
    ?watchdog_stalls ?injection_lanes ?injection_capacity ?admission
    ?admission_target_ns ?server ?allow_relaxed f =
  Wool.with_pool
    ~config:
      (config ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
         ?seed ?trace ?trace_capacity ?policy ?faults ?watchdog_interval_ns
         ?watchdog_stalls ?injection_lanes ?injection_capacity ?admission
         ?admission_target_ns ?server ?allow_relaxed ())
    f

(* Every pool mode, with a label for per-case messages — derived from the
   canonical {!Wool.Mode.all} so new modes are swept the day they exist.
   [exact_modes] is the exactly-once subset, for suites whose workload is
   not idempotent (shared accumulators, in-place mutation). *)
let all_modes = List.map (fun m -> (Wool.Mode.name m, m)) Wool.Mode.all

let exact_modes =
  List.filter (fun (_, m) -> not (Wool.Mode.is_relaxed m)) all_modes

let relaxed_modes =
  List.filter (fun (_, m) -> Wool.Mode.is_relaxed m) all_modes

(* The canonical fork-join workload and its sequential oracle. Spawned
   with [spawn_idempotent] — fib is pure, so it runs unchanged on the
   relaxed (at-least-once) modes. *)
let rec fib ctx n =
  if n < 2 then n
  else begin
    let b = Wool.spawn_idempotent ctx (fun ctx -> fib ctx (n - 2)) in
    let a = fib ctx (n - 1) in
    a + Wool.join ctx b
  end

let rec fib_serial n =
  if n < 2 then n else fib_serial (n - 1) + fib_serial (n - 2)

(* Spin-wait that also yields the timeslice: on a machine with fewer
   cores than domains the peer needs the CPU to make progress. *)
let await_flag flag =
  while Atomic.get flag < 0 do
    Domain.cpu_relax ();
    Unix.sleepf 0.0002
  done

(* Spin until [cond] holds or [timeout_ns] elapses (monotonic deadline:
   a wall-clock step must not cut it short); returns whether it held. *)
let spin_until ?(timeout_ns = 5_000_000_000) cond =
  let deadline = Wool_util.Clock.now_ns () + timeout_ns in
  let rec go () =
    if cond () then true
    else if Wool_util.Clock.now_ns () >= deadline then cond ()
    else begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0
