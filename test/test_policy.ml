(* Wool_policy: the shared steal-policy layer. Exercises the pure
   vocabulary (names, sweep), the per-worker state machines (victim
   selection, idle backoff) for determinism and exact sequences, and the
   Wool.Config plumbing that carries a policy into the real runtime. *)

module Wp = Wool_policy
module Sel = Wool_policy.Selector
module Bo = Wool_policy.Backoff
module Select = Wool_policy.Select
module Rng = Wool_util.Rng

let action =
  let pp fmt = function
    | Bo.Relax -> Format.pp_print_string fmt "Relax"
    | Bo.Yield -> Format.pp_print_string fmt "Yield"
    | Bo.Nap f -> Format.fprintf fmt "Nap %d" f
  in
  Alcotest.testable pp ( = )

(* ---- names ---- *)

let test_selector_names () =
  Alcotest.(check int) "six selectors" 6 (List.length Sel.all);
  List.iter
    (fun s ->
      match Sel.of_name (Sel.name s) with
      | Some s' -> Alcotest.(check string) "roundtrip" (Sel.name s) (Sel.name s')
      | None -> Alcotest.failf "of_name %S" (Sel.name s))
    Sel.all;
  Alcotest.(check bool) "unknown rejected" true (Sel.of_name "bogus" = None)

let test_backoff_names () =
  List.iter
    (fun b ->
      match Bo.of_name (Bo.name b) with
      | Some b' -> Alcotest.(check string) "roundtrip" (Bo.name b) (Bo.name b')
      | None -> Alcotest.failf "of_name %S" (Bo.name b))
    (Bo.default
     :: Bo.Nap_after 7
     :: Bo.Exponential { streak = 3; max_factor = 128 }
     :: Bo.Yield_then_nap { yields = 0; naps = 5 }
     :: Bo.all);
  Alcotest.(check string) "default is the historical loop" "nap64"
    (Bo.name Bo.default);
  List.iter
    (fun s -> Alcotest.(check bool) s true (Bo.of_name s = None))
    [ "nap0"; "nap"; "expx"; "exp0x4"; "yield9-nap3"; "bogus" ]

let test_policy_names () =
  Alcotest.(check string) "default name" "random/nap64" (Wp.name Wp.default);
  List.iter
    (fun p ->
      match Wp.of_name (Wp.name p) with
      | Some p' -> Alcotest.(check string) "roundtrip" (Wp.name p) (Wp.name p')
      | None -> Alcotest.failf "of_name %S" (Wp.name p))
    (Wp.sweep ())

let test_sweep_grid () =
  let ps = Wp.sweep () in
  Alcotest.(check int) "full grid"
    (List.length Sel.all * List.length Bo.all)
    (List.length ps);
  let names = List.map Wp.name ps in
  Alcotest.(check int) "all distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  (* selectors vary slowest: the first |Backoff.all| entries share one *)
  (match ps with
  | a :: b :: _ ->
      Alcotest.(check string) "selectors slowest" (Sel.name a.Wp.selector)
        (Sel.name b.Wp.selector)
  | _ -> Alcotest.fail "sweep too short")

(* ---- victim selection ---- *)

let draws selector ~self ~n ~seed ~count =
  let st = Select.make selector ~self () in
  let rng = Rng.make seed in
  List.init count (fun _ -> Select.next st ~rng ~n)

let test_select_deterministic () =
  List.iter
    (fun selector ->
      List.iter
        (fun seed ->
          let a = draws selector ~self:1 ~n:6 ~seed ~count:200 in
          let b = draws selector ~self:1 ~n:6 ~seed ~count:200 in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d reproducible" (Sel.name selector) seed)
            true (a = b);
          List.iter
            (function
              | None -> Alcotest.fail "None with n > 1"
              | Some v ->
                  Alcotest.(check bool) "in range" true (v >= 0 && v < 6);
                  Alcotest.(check bool) "never self" true (v <> 1))
            a)
        [ 1; 42; 1234 ])
    Sel.all

let test_select_singleton () =
  List.iter
    (fun selector ->
      let st = Select.make selector ~self:0 () in
      let rng = Rng.make 9 in
      Alcotest.(check bool)
        (Sel.name selector ^ " alone")
        true
        (Select.next st ~rng ~n:1 = None))
    Sel.all

let test_round_robin_sequence () =
  (* self = 1, n = 4: scan 2, 3, 0, (skip self) 2, 3, 0, ... *)
  let got =
    draws Sel.Round_robin ~self:1 ~n:4 ~seed:5 ~count:7 |> List.filter_map Fun.id
  in
  Alcotest.(check (list int)) "cyclic scan" [ 2; 3; 0; 2; 3; 0; 2 ] got

let test_last_victim_affinity () =
  let st = Select.make Sel.Last_victim ~self:0 () in
  let rng = Rng.make 3 in
  Select.on_success st ~victim:3;
  Alcotest.(check (option int)) "sticks" (Some 3) (Select.next st ~rng ~n:5);
  Alcotest.(check (option int)) "still sticks" (Some 3)
    (Select.next st ~rng ~n:5);
  (* shrunk pool invalidates the affinity *)
  (match Select.next st ~rng ~n:3 with
  | Some v -> Alcotest.(check bool) "fallback in range" true (v = 1 || v = 2)
  | None -> Alcotest.fail "None");
  (* a failed unpinned attempt drops the affinity: with a single other
     worker the random fallback can only return it, so this is exact *)
  let st2 = Select.make Sel.Last_victim ~self:0 () in
  Select.on_success st2 ~victim:1;
  Select.on_failure st2;
  Alcotest.(check (option int)) "dropped after failure -> random" (Some 1)
    (Select.next st2 ~rng ~n:2)

let test_leapfrog_biased_affinity () =
  let st = Select.make Sel.Leapfrog_biased ~self:2 () in
  let rng = Rng.make 3 in
  Select.stolen_by st ~thief:4;
  Alcotest.(check (option int)) "prefers our thief" (Some 4)
    (Select.next st ~rng ~n:6);
  Select.on_failure st;
  (match Select.next st ~rng ~n:6 with
  | Some v -> Alcotest.(check bool) "fallback not pinned" true (v <> 2)
  | None -> Alcotest.fail "None");
  Select.stolen_by st ~thief:(-1);
  let st2 = Select.make Sel.Leapfrog_biased ~self:2 () in
  Select.stolen_by st2 ~thief:(-1);
  match Select.next st2 ~rng ~n:6 with
  | Some v -> Alcotest.(check bool) "negative thief ignored" true (v <> 2)
  | None -> Alcotest.fail "None"

let test_socket_local_prefers_local () =
  (* 8 workers on 2 sockets (0-3 / 4-7): worker 1's picks are mostly
     local, but the 1-in-4 random escape eventually probes remote. *)
  let socket_of wid = wid / 4 in
  let st = Select.make ~socket_of Sel.Socket_local ~self:1 () in
  let rng = Rng.make 11 in
  let local = ref 0 and remote = ref 0 in
  for _ = 1 to 400 do
    match Select.next st ~rng ~n:8 with
    | Some v -> if socket_of v = 0 then incr local else incr remote
    | None -> Alcotest.fail "None"
  done;
  Alcotest.(check bool) "mostly local" true (!local > !remote);
  Alcotest.(check bool) "escapes the socket" true (!remote > 0);
  (* pin the distribution under the seeded rng: a drift in draw order or
     in the local-peer set shows up as a count change here *)
  Alcotest.(check (pair int int)) "2-socket distribution pinned" (345, 55)
    (!local, !remote)

let test_socket_local_trivial_map_is_random () =
  (* Satellite regression: under a trivial map — the default
     [socket_of = fun _ -> 0], or any map that puts everyone on our
     socket — Socket_local must degrade to plain uniform random,
     consuming exactly one draw per probe (no 1-in-4 gate). *)
  let check_matches_random mk_st label =
    List.iter
      (fun seed ->
        let expect =
          draws Sel.Random_victim ~self:2 ~n:6 ~seed ~count:300
        in
        let st = mk_st () in
        let rng = Rng.make seed in
        let got = List.init 300 (fun _ -> Select.next st ~rng ~n:6) in
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d = random bit-for-bit" label seed)
          true (expect = got))
      [ 7; 42; 90210 ]
  in
  check_matches_random
    (fun () -> Select.make Sel.Socket_local ~self:2 ())
    "default map";
  check_matches_random
    (fun () -> Select.make ~socket_of:(fun _ -> 3) Sel.Socket_local ~self:2 ())
    "constant map";
  (* an isolated worker (nobody shares its socket) also degrades *)
  check_matches_random
    (fun () ->
      Select.make
        ~socket_of:(fun wid -> if wid = 2 then 1 else 0)
        Sel.Socket_local ~self:2 ())
    "isolated worker"

let test_random_matches_historical_draw () =
  (* The draw-and-shift must consume exactly one rng draw per probe and
     reproduce the historical sequence: k = int rng (n-1), +1 if >= self. *)
  let n = 5 and self = 2 and seed = 77 in
  let expect =
    let rng = Rng.make seed in
    List.init 50 (fun _ ->
        let k = Rng.int rng (n - 1) in
        if k >= self then k + 1 else k)
  in
  let got =
    draws Sel.Random_victim ~self ~n ~seed ~count:50 |> List.filter_map Fun.id
  in
  Alcotest.(check (list int)) "bit-for-bit" expect got

(* ---- hierarchical selection ---- *)

module Topo = Wool_policy.Topology
module Hier = Wool_policy.Hier

let test_hier_names () =
  List.iter
    (fun h ->
      let name = Hier.name h in
      match Hier.of_name name with
      | Some h' -> Alcotest.(check string) "roundtrip" name (Hier.name h')
      | None -> Alcotest.failf "Hier.of_name %S" name)
    [
      Hier.default;
      Hier.auto ~sockets:4 ();
      Hier.auto ~sockets:4 ~smt:2 ();
      Hier.auto ~probes:[| 1; 3 |] ~sockets:2 ();
      Hier.auto ~escalate_pct:[| 0; 100 |] ~sockets:2 ();
      Hier.fixed (Topo.of_spec [| [| 1; 1 |]; [| 2 |] |]);
      Hier.fixed ~probes:[| 5; 5 |] (Topo.make ~sockets:2 ~workers:8 ());
    ];
  Alcotest.(check string) "default spelling" "hier2" (Hier.name Hier.default);
  Alcotest.(check string) "knobs spelled out" "hier4x2:p1.3:e7.9"
    (Hier.name (Hier.auto ~probes:[| 1; 3 |] ~escalate_pct:[| 7; 9 |] ~smt:2
                  ~sockets:4 ()));
  (* selector- and policy-level roundtrips carry the hier grammar *)
  (match Sel.of_name "hier4x2:p1.3:e7.9" with
  | Some s ->
      Alcotest.(check string) "selector roundtrip" "hier4x2:p1.3:e7.9"
        (Sel.name s)
  | None -> Alcotest.fail "selector of_name");
  (match Wp.of_name "hier(2x4+8)/exp16x32" with
  | Some p ->
      Alcotest.(check string) "policy roundtrip" "hier(2x4+8)/exp16x32"
        (Wp.name p)
  | None -> Alcotest.fail "policy of_name");
  List.iter
    (fun s -> Alcotest.(check bool) s true (Hier.of_name s = None))
    [
      "hier"; "hier0"; "hier-2"; "hierx"; "hier2x0"; "hier2:p0.1";
      "hier2:p1"; "hier2:e1.101"; "hier2:q1.2"; "hier()"; "hier(0+4)";
      "random";
    ]

let test_hier_invalid_args () =
  let rejects f = Alcotest.check_raises "rejected"
      (Invalid_argument "") (fun () ->
        try f () with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  rejects (fun () -> ignore (Hier.auto ~sockets:0 ()));
  rejects (fun () -> ignore (Hier.auto ~probes:[| 1 |] ~sockets:2 ()));
  rejects (fun () -> ignore (Hier.auto ~probes:[| 0; 2 |] ~sockets:2 ()));
  rejects (fun () -> ignore (Hier.auto ~escalate_pct:[| 50; 101 |] ~sockets:2 ()));
  rejects (fun () -> ignore (Topo.of_spec [||]));
  rejects (fun () -> ignore (Topo.of_spec [| [||] |]));
  rejects (fun () -> ignore (Topo.of_spec [| [| 1; 0 |] |]));
  rejects (fun () -> ignore (Topo.make ~workers:0 ()))

let test_hier_steal_back () =
  (* a victim whose task was stolen prefers re-stealing from the thief,
     whatever the current probe radius; the hint is try-once (cleared by
     the next unpinned failure) *)
  let h = Hier.auto ~sockets:2 () in
  let st = Select.make (Sel.Hierarchical h) ~self:0 () in
  let rng = Rng.make 4 in
  Select.stolen_by st ~thief:7;
  Alcotest.(check (option int)) "steals back" (Some 7)
    (Select.next st ~rng ~n:8);
  Alcotest.(check (option int)) "still hinted until an outcome" (Some 7)
    (Select.next st ~rng ~n:8);
  Select.on_failure st;
  (match Select.next st ~rng ~n:8 with
  | Some v -> Alcotest.(check bool) "back to ring probing" true (v >= 1 && v < 8)
  | None -> Alcotest.fail "None");
  (* an out-of-range thief (pool shrank) is ignored *)
  let st2 = Select.make (Sel.Hierarchical h) ~self:0 () in
  Select.stolen_by st2 ~thief:9;
  match Select.next st2 ~rng ~n:4 with
  | Some v -> Alcotest.(check bool) "in range" true (v >= 1 && v < 4)
  | None -> Alcotest.fail "None"

let test_hier_escalates_and_resets () =
  (* 8 workers, 2 sockets of 4, no probabilistic escalation: worker 0
     probes sockets-mates only until the probe budget is spent, then the
     whole machine; a success snaps the radius back. *)
  let topo = Topo.make ~sockets:2 ~workers:8 () in
  let h = Hier.fixed ~probes:[| 2; 3 |] ~escalate_pct:[| 0; 0 |] topo in
  let st = Select.make (Sel.Hierarchical h) ~self:0 () in
  let rng = Rng.make 21 in
  let probe () =
    match Select.next st ~rng ~n:8 with
    | Some v -> v
    | None -> Alcotest.fail "None"
  in
  (* smt=1: the core ring is empty, so the radius starts at the socket *)
  for _ = 1 to 3 do
    let v = probe () in
    Alcotest.(check bool) "socket ring first" true (v >= 1 && v <= 3);
    Alcotest.(check (option int)) "radius reported" (Some 2)
      (Select.hier_level st);
    Select.on_failure st
  done;
  (* budget spent: now the machine ring, which includes remote workers *)
  Alcotest.(check (option int)) "escalated to machine" (Some 3)
    (Select.hier_level st);
  let seen_remote = ref false in
  for _ = 1 to 50 do
    if probe () >= 4 then seen_remote := true;
    Select.on_failure st
  done;
  Alcotest.(check bool) "remote victims reachable" true !seen_remote;
  Alcotest.(check (option int)) "stays at machine" (Some 3)
    (Select.hier_level st);
  Select.on_success st ~victim:5;
  Alcotest.(check (option int)) "success snaps back" (Some 2)
    (Select.hier_level st);
  let v = probe () in
  Alcotest.(check bool) "back to the socket ring" true (v >= 1 && v <= 3)

let test_hier_auto_sizes_from_pool () =
  (* Auto spec: the same policy value works at any pool size, and a
     fixed topology sized for another pool falls back to flat random. *)
  let h = Hier.auto ~sockets:2 () in
  List.iter
    (fun n ->
      let st = Select.make (Sel.Hierarchical h) ~self:0 () in
      let rng = Rng.make 13 in
      for _ = 1 to 100 do
        match Select.next st ~rng ~n with
        | Some v -> Alcotest.(check bool) "valid victim" true (v >= 1 && v < n)
        | None -> Alcotest.fail "None"
      done)
    [ 2; 3; 5; 8; 16 ];
  let fixed = Hier.fixed (Topo.make ~sockets:2 ~workers:8 ()) in
  let expect = draws Sel.Random_victim ~self:0 ~n:5 ~seed:31 ~count:100 in
  let got = draws (Sel.Hierarchical fixed) ~self:0 ~n:5 ~seed:31 ~count:100 in
  Alcotest.(check bool) "mismatched fixed topology = flat random" true
    (expect = got)

(* ---- backoff ---- *)

let test_nap_after () =
  let st = Bo.make (Bo.Nap_after 3) in
  Alcotest.(check (list action)) "nap every 3rd failure"
    [ Bo.Relax; Bo.Relax; Bo.Nap 1; Bo.Relax; Bo.Relax; Bo.Nap 1 ]
    (List.init 6 (fun _ -> Bo.on_failure st));
  Bo.on_success st;
  Alcotest.(check action) "streak reset" Bo.Relax (Bo.on_failure st)

let test_exponential () =
  let st = Bo.make (Bo.Exponential { streak = 2; max_factor = 8 }) in
  let naps =
    List.init 12 (fun _ -> Bo.on_failure st)
    |> List.filter_map (function Bo.Nap f -> Some f | _ -> None)
  in
  Alcotest.(check (list int)) "doubles then caps" [ 1; 2; 4; 8; 8; 8 ] naps;
  Bo.on_success st;
  let naps' =
    List.init 4 (fun _ -> Bo.on_failure st)
    |> List.filter_map (function Bo.Nap f -> Some f | _ -> None)
  in
  Alcotest.(check (list int)) "ladder resets on success" [ 1; 2 ] naps'

let test_yield_then_nap () =
  let st = Bo.make (Bo.Yield_then_nap { yields = 2; naps = 4 }) in
  Alcotest.(check (list action)) "spin, yield, nap"
    [ Bo.Relax; Bo.Yield; Bo.Yield; Bo.Nap 1; Bo.Relax; Bo.Yield ]
    (List.init 6 (fun _ -> Bo.on_failure st))

(* ---- Config plumbing ---- *)

module C = Wool.Config

let test_config_policy_roundtrip () =
  let p = Wp.make ~selector:Sel.Round_robin ~backoff:(Bo.Nap_after 8) () in
  let c = C.make ~policy:p () in
  Alcotest.(check string) "selector lands" "round-robin"
    (Sel.name c.C.steal_policy);
  Alcotest.(check string) "backoff lands" "nap8" (Bo.name c.C.backoff);
  Alcotest.(check string) "read back as one value" (Wp.name p)
    (Wp.name (C.policy c));
  (* per-field arguments override the packaged policy *)
  let c2 = C.make ~policy:p ~backoff:(Bo.Nap_after 2) () in
  Alcotest.(check string) "field beats policy" "nap2" (Bo.name c2.C.backoff);
  Alcotest.(check string) "other field kept" "round-robin"
    (Sel.name c2.C.steal_policy);
  let c3 = C.with_policy Wp.default c2 in
  Alcotest.(check string) "with_policy replaces both" "random/nap64"
    (Wp.name (C.policy c3))

let test_config_default_is_historical () =
  Alcotest.(check string) "default policy" "random/nap64"
    (Wp.name (C.policy C.default))

let test_override_keeps_every_field () =
  (* the regression this API change fixes: trace_capacity used to be
     silently dropped by override *)
  let base =
    C.make ~workers:3 ~trace:true ~trace_capacity:123
      ~policy:(Wp.make ~selector:Sel.Last_victim ())
      ()
  in
  let kept = C.override base () in
  Alcotest.(check int) "trace_capacity survives" 123 kept.C.trace_capacity;
  Alcotest.(check string) "policy survives" (Wp.name (C.policy base))
    (Wp.name (C.policy kept));
  Alcotest.(check (option int)) "workers survive" (Some 3) kept.C.workers;
  let bumped = C.override base ~trace_capacity:456 ~seed:9 () in
  Alcotest.(check int) "trace_capacity overridable" 456
    bumped.C.trace_capacity;
  Alcotest.(check int) "seed overridable" 9 bumped.C.seed;
  Alcotest.(check bool) "trace kept" true bumped.C.trace

let suite =
  [
    ( "policy",
      [
        Alcotest.test_case "selector names" `Quick test_selector_names;
        Alcotest.test_case "backoff names" `Quick test_backoff_names;
        Alcotest.test_case "policy names" `Quick test_policy_names;
        Alcotest.test_case "sweep grid" `Quick test_sweep_grid;
        Alcotest.test_case "select deterministic" `Quick
          test_select_deterministic;
        Alcotest.test_case "select singleton" `Quick test_select_singleton;
        Alcotest.test_case "round-robin sequence" `Quick
          test_round_robin_sequence;
        Alcotest.test_case "last-victim affinity" `Quick
          test_last_victim_affinity;
        Alcotest.test_case "leapfrog-biased affinity" `Quick
          test_leapfrog_biased_affinity;
        Alcotest.test_case "socket-local locality" `Quick
          test_socket_local_prefers_local;
        Alcotest.test_case "socket-local trivial map is random" `Quick
          test_socket_local_trivial_map_is_random;
        Alcotest.test_case "random historical draws" `Quick
          test_random_matches_historical_draw;
        Alcotest.test_case "hier names" `Quick test_hier_names;
        Alcotest.test_case "hier invalid args" `Quick test_hier_invalid_args;
        Alcotest.test_case "hier steal-back" `Quick test_hier_steal_back;
        Alcotest.test_case "hier escalation" `Quick
          test_hier_escalates_and_resets;
        Alcotest.test_case "hier auto sizing" `Quick
          test_hier_auto_sizes_from_pool;
        Alcotest.test_case "nap-after backoff" `Quick test_nap_after;
        Alcotest.test_case "exponential backoff" `Quick test_exponential;
        Alcotest.test_case "yield-then-nap backoff" `Quick
          test_yield_then_nap;
        Alcotest.test_case "config policy roundtrip" `Quick
          test_config_policy_roundtrip;
        Alcotest.test_case "config default historical" `Quick
          test_config_default_is_historical;
        Alcotest.test_case "override keeps every field" `Quick
          test_override_keeps_every_field;
      ] );
  ]
