(* The model checker itself: engine semantics (does it find real races,
   does the park/wake reduction terminate, is replay deterministic), the
   protocol scenarios, and the trace oracle. *)

module Sched = Wool_check.Sched
module Sa = Wool_check.Shadow_atomic
module Scenarios = Wool_check.Scenarios
module Oracle = Wool_check.Oracle
module E = Wool_trace.Event

(* ---- engine ---- *)

let test_finds_lost_update () =
  (* two threads doing a non-atomic read-modify-write: the checker must
     find the interleaving where one increment is lost *)
  let racy () =
    Sched.run (fun () ->
        let c = Sa.make 0 in
        let incr () = Sa.set c (Sa.get c + 1) in
        Sched.spawn incr;
        Sched.spawn incr;
        Sched.final (fun () ->
            if Sa.get c <> 2 then failwith "lost update"))
  in
  match racy () with
  | _ -> Alcotest.fail "lost update not found"
  | exception Sched.Violation (msg, sched) ->
      Alcotest.(check bool) "names the bug" true (msg = "Failure(\"lost update\")");
      Alcotest.(check bool) "schedule rendered" true (String.length sched > 0)

let test_cas_loop_is_safe () =
  (* the same counter with a CAS retry loop: every schedule passes, and
     exploration visited more than one interleaving *)
  let stats =
    Sched.run (fun () ->
        let c = Sa.make 0 in
        let incr () =
          let rec go () =
            let v = Sa.get c in
            if not (Sa.compare_and_set c v (v + 1)) then go ()
          in
          go ()
        in
        Sched.spawn incr;
        Sched.spawn incr;
        Sched.final (fun () ->
            if Sa.get c <> 2 then failwith "lost update"))
  in
  Alcotest.(check bool) "explored several schedules" true
    (stats.Sched.schedules > 1)

let test_park_wake_terminates () =
  (* a spinner waiting on a flag another thread sets: cpu_relax parks,
     the write wakes, exploration is finite and clean *)
  let stats =
    Sched.run (fun () ->
        let flag = Sa.make false in
        Sched.spawn (fun () ->
            while not (Sa.get flag) do
              Sa.cpu_relax ()
            done);
        Sched.spawn (fun () -> Sa.set flag true))
  in
  Alcotest.(check bool) "finite" true (stats.Sched.schedules >= 1)

let test_deadlock_detected () =
  match
    Sched.run (fun () ->
        let flag = Sa.make false in
        Sched.spawn (fun () ->
            while not (Sa.get flag) do
              Sa.cpu_relax ()
            done))
  with
  | _ -> Alcotest.fail "spinning on a flag nobody sets must deadlock"
  | exception Sched.Deadlock _ -> ()

let test_schedule_limit () =
  match
    Sched.run ~max_schedules:2 (fun () ->
        let c = Sa.make 0 in
        let w () = Sa.set c 1 in
        Sched.spawn w;
        Sched.spawn w;
        Sched.spawn w)
  with
  | _ -> Alcotest.fail "3 threads x 1 op exceed 2 schedules"
  | exception Sched.Schedule_limit n -> Alcotest.(check int) "cap" 2 n

let test_replay_deterministic () =
  let scenario () =
    Sched.run (fun () ->
        let a = Sa.make 0 and b = Sa.make 0 in
        Sched.spawn (fun () ->
            Sa.set a 1;
            ignore (Sa.get b : int));
        Sched.spawn (fun () ->
            Sa.set b 1;
            ignore (Sa.get a : int)))
  in
  let s1 = scenario () and s2 = scenario () in
  Alcotest.(check int) "same exploration size" s1.Sched.schedules
    s2.Sched.schedules;
  (* 2 threads x 2 ops: C(4,2) = 6 interleavings *)
  Alcotest.(check int) "exact count" 6 s1.Sched.schedules

(* ---- scenarios ---- *)

let scenario_case (s : Scenarios.t) =
  Alcotest.test_case s.Scenarios.name `Slow (fun () ->
      match Scenarios.run_one s with
      | Scenarios.Pass st ->
          Alcotest.(check bool)
            (Printf.sprintf "%s explored >1 schedule" s.Scenarios.name)
            true
            (st.Sched.schedules > 1)
      | Scenarios.Fail msg -> Alcotest.failf "%s: %s" s.Scenarios.name msg)

(* ---- oracle ---- *)

let ev ?(ts = 0) ?(a = -1) ?(b = -1) worker tag = { E.ts; worker; tag; a; b }

let counts ?(spawns = 0) ?(steals = 0) ?(leap_steals = 0) ?(joins_stolen = 0)
    ?(inlined_private = 0) ?(inlined_public = 0) ?(publish_events = 0)
    ?(privatize_events = 0) ?(injected = 0) () =
  {
    Oracle.spawns;
    steals;
    leap_steals;
    joins_stolen;
    inlined_private;
    inlined_public;
    publish_events;
    privatize_events;
    injected;
  }

let test_oracle_clean_history () =
  (* worker 0 spawns twice at index 0 (recycled), worker 1 steals both *)
  let per_worker =
    [|
      [|
        ev 0 E.Spawn ~a:0;
        ev 0 E.Join_stolen ~a:0 ~b:1;
        ev 0 E.Spawn ~a:0;
        ev 0 E.Join_stolen ~a:0 ~b:1;
      |];
      [|
        ev 1 E.Steal_attempt ~b:0;
        ev 1 E.Steal_ok ~a:0 ~b:0;
        ev 1 E.Steal_attempt ~b:0;
        ev 1 E.Steal_ok ~a:0 ~b:0;
      |];
    |]
  in
  let c = counts ~spawns:2 ~steals:2 ~joins_stolen:2 () in
  Alcotest.(check (list string))
    "clean" []
    (Oracle.check_events ~direct:true ~counts:c ~dropped:0 per_worker)

let test_oracle_counter_mismatch () =
  let per_worker = [| [| ev 0 E.Spawn ~a:0 |] |] in
  let c = counts ~spawns:2 () in
  match Oracle.check_events ~direct:true ~counts:c ~dropped:0 per_worker with
  | [] -> Alcotest.fail "spawn undercount not flagged"
  | v :: _ ->
      Alcotest.(check bool) "names spawns" true (Test_util.contains v "spawn")

let test_oracle_phantom_steal () =
  (* a steal of a descriptor its victim never spawned *)
  let per_worker =
    [|
      [| ev 0 E.Spawn ~a:1 |];
      [| ev 1 E.Steal_attempt ~b:0; ev 1 E.Steal_ok ~a:0 ~b:0 |];
    |]
  in
  let c = counts ~spawns:1 ~steals:1 () in
  match Oracle.check_events ~direct:true ~counts:c ~dropped:0 per_worker with
  | [] -> Alcotest.fail "phantom steal not flagged"
  | v :: _ ->
      Alcotest.(check bool) "causality message" true
        (Test_util.contains v "causality")

let test_oracle_phantom_thief () =
  (* owner blames thief 1 for a steal thief 1 never committed *)
  let per_worker =
    [|
      [| ev 0 E.Spawn ~a:0; ev 0 E.Join_stolen ~a:0 ~b:1 |];
      [| ev 1 E.Steal_attempt ~b:0 |];
    |]
  in
  let c = counts ~spawns:1 ~joins_stolen:1 () in
  match Oracle.check_events ~direct:true ~counts:c ~dropped:0 per_worker with
  | [] -> Alcotest.fail "phantom thief not flagged"
  | v :: _ ->
      Alcotest.(check bool) "causality message" true
        (Test_util.contains v "causality")

let test_oracle_dropped_skips () =
  let per_worker = [| [| ev 0 E.Spawn ~a:0 |] |] in
  let c = counts ~spawns:99 () in
  Alcotest.(check (list string))
    "incomplete stream unchecked" []
    (Oracle.check_events ~direct:true ~counts:c ~dropped:1 per_worker)

let test_oracle_queued_skips_causality () =
  (* queued modes carry a = -1; only accounting applies *)
  let per_worker =
    [|
      [| ev 0 E.Spawn; ev 0 E.Join_stolen |];
      [| ev 1 E.Steal_attempt ~b:0; ev 1 E.Steal_ok ~b:0 |];
    |]
  in
  let c = counts ~spawns:1 ~steals:1 ~joins_stolen:1 () in
  Alcotest.(check (list string))
    "clean" []
    (Oracle.check_events ~direct:false ~counts:c ~dropped:0 per_worker)

let suite =
  [
    ( "check-engine",
      [
        Alcotest.test_case "finds lost update" `Quick test_finds_lost_update;
        Alcotest.test_case "cas loop safe" `Quick test_cas_loop_is_safe;
        Alcotest.test_case "park/wake terminates" `Quick
          test_park_wake_terminates;
        Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
        Alcotest.test_case "schedule limit" `Quick test_schedule_limit;
        Alcotest.test_case "replay deterministic" `Quick
          test_replay_deterministic;
      ] );
    ("check-scenarios", List.map scenario_case Scenarios.all);
    ( "check-oracle",
      [
        Alcotest.test_case "clean history" `Quick test_oracle_clean_history;
        Alcotest.test_case "counter mismatch" `Quick
          test_oracle_counter_mismatch;
        Alcotest.test_case "phantom steal" `Quick test_oracle_phantom_steal;
        Alcotest.test_case "phantom thief" `Quick test_oracle_phantom_thief;
        Alcotest.test_case "dropped events skip" `Quick
          test_oracle_dropped_skips;
        Alcotest.test_case "queued accounting only" `Quick
          test_oracle_queued_skips_causality;
      ] );
  ]
