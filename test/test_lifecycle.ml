(* The submission lifecycle layer: per-job deadlines (lazy expiry at
   dequeue), cooperative cancellation (before start, mid-run, and at
   spawn boundaries), timed awaits, retrying submission, and the
   adaptive overload controller.

   As in test_submit, cases that need an observable queue use a
   non-server [workers = 1] pool: nothing drains the lanes until [run]
   or [shutdown], so a ticket's pending/dropped states can be asserted
   deterministically. *)

(* -- deadlines -- *)

let test_expired_drop () =
  let pool = Test_util.create ~workers:1 () in
  let ran = Atomic.make 0 in
  let tk =
    Wool.Submit.submit
      ~deadline:(Wool_util.Clock.now_ns () - 1)
      pool
      (fun _ctx -> Atomic.incr ran)
  in
  (match Wool.Submit.poll tk with
  | `Pending -> ()
  | _ -> Alcotest.fail "undrained ticket must poll Pending");
  (* draining run's root necessarily dequeued — and dropped — ours first *)
  Alcotest.(check int) "run alongside" 5 (Wool.run pool (fun _ctx -> 5));
  (match Wool.Submit.poll tk with
  | `Expired -> ()
  | _ -> Alcotest.fail "stale job must poll Expired");
  (match Wool.Submit.await tk with
  | exception Wool.Submission_expired -> ()
  | _ -> Alcotest.fail "await on an expired ticket must raise Expired");
  Alcotest.(check int) "body never ran" 0 (Atomic.get ran);
  let ig = Wool.ingress_stats pool in
  Alcotest.(check int) "expired" 1 ig.Wool.Pool.expired;
  Alcotest.(check (list string)) "invariants" [] (Wool.Invariants.check pool);
  Wool.shutdown pool

let test_future_deadline_runs () =
  Test_util.with_pool ~workers:1 ~server:true (fun pool ->
      let tk =
        Wool.Submit.submit
          ~deadline:(Wool.Submit.deadline_in 60.)
          pool
          (fun _ctx -> 42)
      in
      Alcotest.(check int) "result" 42 (Wool.Submit.await tk);
      Alcotest.(check int) "expired" 0
        (Wool.ingress_stats pool).Wool.Pool.expired)

(* -- timed awaits -- *)

let test_await_for_timeout () =
  let pool = Test_util.create ~workers:1 () in
  let tk = Wool.Submit.submit pool (fun _ctx -> 9) in
  Alcotest.(check (option int))
    "times out" None
    (Wool.Submit.await_for tk 0.02);
  Alcotest.(check (option int))
    "past deadline" None
    (Wool.Submit.await_until tk ~deadline:(Wool_util.Clock.now_ns () - 1));
  Wool.shutdown pool;
  (* once resolved, the timed await reports the outcome, not a timeout *)
  match Wool.Submit.await_for tk 1.0 with
  | exception Wool.Submit.Rejected -> ()
  | _ -> Alcotest.fail "shutdown-drained ticket must reject via await_for"

let test_await_for_resolves () =
  Test_util.with_pool ~workers:1 ~server:true (fun pool ->
      let tk = Wool.Submit.submit pool (fun _ctx -> 11) in
      Alcotest.(check (option int))
        "resolves" (Some 11)
        (Wool.Submit.await_for tk 5.0))

(* -- cancellation -- *)

let test_cancel_before_start_all_modes () =
  List.iter
    (fun (name, mode) ->
      let pool = Test_util.create ~workers:1 ~mode () in
      let ran = Atomic.make 0 in
      let c = Wool.Cancel.create () in
      Wool.Cancel.cancel c;
      let tk =
        Wool.Submit.submit ~idempotent:true ~cancel:c pool (fun _ctx ->
            Atomic.incr ran)
      in
      ignore (Wool.run pool (fun _ctx -> 0));
      (match Wool.Submit.poll tk with
      | `Cancelled -> ()
      | _ -> Alcotest.failf "%s: pre-cancelled job must poll Cancelled" name);
      (match Wool.Submit.await tk with
      | exception Wool.Submit.Cancelled -> ()
      | _ -> Alcotest.failf "%s: await must raise Cancelled" name);
      Alcotest.(check int) (name ^ ": body never ran") 0 (Atomic.get ran);
      Alcotest.(check int)
        (name ^ ": cancelled")
        1
        (Wool.ingress_stats pool).Wool.Pool.cancelled;
      Alcotest.(check (list string))
        (name ^ ": invariants")
        [] (Wool.Invariants.check pool);
      Wool.shutdown pool)
    Test_util.all_modes

let test_cancel_mid_run () =
  Test_util.with_pool ~workers:1 ~server:true (fun pool ->
      let started = Atomic.make (-1) in
      let c = Wool.Cancel.create () in
      let tk =
        Wool.Submit.submit ~cancel:c pool (fun ctx ->
            Atomic.set started 1;
            let tok = Option.get (Wool.cancel_token ctx) in
            while not (Wool.Cancel.is_set tok) do
              Domain.cpu_relax ();
              Unix.sleepf 0.0002
            done;
            Wool.Cancel.check tok;
            Alcotest.fail "check on a set token must raise")
      in
      Test_util.await_flag started;
      Wool.Cancel.cancel c;
      (match Wool.Submit.await tk with
      | exception Wool.Submit.Cancelled -> ()
      | _ -> Alcotest.fail "mid-run cancel must resolve Cancelled");
      let ig = Wool.ingress_stats pool in
      (* settlement-based: a job cancelled mid-run is not "executed" *)
      Alcotest.(check int) "executed" 0 ig.Wool.Pool.executed;
      Alcotest.(check int) "cancelled" 1 ig.Wool.Pool.cancelled)

let test_spawn_boundary_cancel () =
  Test_util.with_pool ~workers:1 ~server:true (fun pool ->
      let c = Wool.Cancel.create () in
      let tk =
        Wool.Submit.submit ~cancel:c pool (fun ctx ->
            (* the job cancels its own token: the next spawn must refuse
               to fan the task tree out any further *)
            Wool.Cancel.cancel c;
            let f = Wool.spawn ctx (fun _ctx -> 1) in
            Wool.join ctx f)
      in
      (match Wool.Submit.await tk with
      | exception Wool.Submit.Cancelled -> ()
      | _ -> Alcotest.fail "spawn under a set token must settle Cancelled");
      Alcotest.(check int) "cancelled" 1
        (Wool.ingress_stats pool).Wool.Pool.cancelled)

(* -- submit_retry -- *)

let test_submit_retry_contract () =
  let pool = Test_util.create ~workers:1 () in
  (match Wool.Submit.submit_retry ~attempts:0 pool (fun _ctx -> 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "attempts:0 must raise Invalid_argument");
  Wool.shutdown pool

let test_submit_retry_exhausts () =
  (* the lane rounds its capacity up to a power of two (minimum 2), so
     two fillers fill a 2-slot lane exactly; [Reject] admission because
     the retry loop only acts on admission-time rejections (the default
     [Block] would park the producer instead) *)
  let pool =
    Test_util.create ~workers:1 ~injection_capacity:2
      ~admission:Wool.Reject ()
  in
  let filler = Wool.Submit.submit pool (fun _ctx -> 3) in
  let _filler2 = Wool.Submit.submit pool (fun _ctx -> 33) in
  (* lane full, nobody draining: every attempt rejects, and the backoff
     between attempts (100us, then 200us) is observable wall time *)
  let t0 = Wool_util.Clock.now_ns () in
  let tk =
    Wool.Submit.submit_retry ~attempts:3 ~backoff_ns:100_000 ~seed:7 pool
      (fun _ctx -> 4)
  in
  let elapsed = Wool_util.Clock.now_ns () - t0 in
  (match Wool.Submit.poll tk with
  | `Rejected -> ()
  | _ -> Alcotest.fail "retries on a full lane must end rejected");
  Alcotest.(check bool) "backed off between attempts" true
    (elapsed >= 300_000);
  let ig = Wool.ingress_stats pool in
  Alcotest.(check int) "three rejections" 3 ig.Wool.Pool.rejected;
  (* [run] is privileged: it helps drain the full lane, running the
     filler, so the earlier admission still completes *)
  ignore (Wool.run pool (fun _ctx -> 0));
  Alcotest.(check int) "queued job ran" 3 (Wool.Submit.await filler);
  Wool.shutdown pool

let test_submit_retry_first_try () =
  Test_util.with_pool ~workers:1 ~server:true (fun pool ->
      let tk = Wool.Submit.submit_retry ~attempts:1 pool (fun _ctx -> 8) in
      Alcotest.(check int) "admitted and ran" 8 (Wool.Submit.await tk))

(* -- shutdown races -- *)

let test_awaiters_race_shutdown_all_modes () =
  List.iter
    (fun (name, mode) ->
      let pool = Test_util.create ~workers:1 ~mode () in
      let tickets =
        List.init 8 (fun i ->
            Wool.Submit.submit ~idempotent:true pool (fun _ctx -> i))
      in
      let rejected = Atomic.make 0 in
      let awaiters =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                List.iteri
                  (fun i tk ->
                    if i mod 4 = d then
                      match Wool.Submit.await tk with
                      | _ -> ()
                      | exception Wool.Submission_rejected ->
                          Atomic.incr rejected)
                  tickets))
      in
      Unix.sleepf 0.005;
      Wool.shutdown pool;
      List.iter Domain.join awaiters;
      Alcotest.(check int) (name ^ ": every awaiter resolved rejected") 8
        (Atomic.get rejected))
    Test_util.all_modes

(* -- adaptive admission -- *)

let test_adaptive_sheds_under_load () =
  Test_util.with_pool ~workers:1 ~server:true ~admission:Wool.Adaptive
    ~admission_target_ns:1 (fun pool ->
      (* a 1ns target trips the controller on the first measured wait.
         The EWMA only moves when the worker dequeues, so pace the
         bursts: each sleep hands the (possibly single-core) box to the
         worker, which pops one slow job and records its wait; the next
         burst then lands in front of a non-empty lane and must shed. *)
      let body _ctx =
        let s = ref 0 in
        for j = 1 to 200_000 do
          s := !s + j
        done;
        !s
      in
      let tks = ref [] in
      for i = 0 to 63 do
        if i mod 8 = 0 then Unix.sleepf 0.002;
        tks := Wool.Submit.submit pool body :: !tks
      done;
      let shed =
        List.fold_left
          (fun n tk ->
            match Wool.Submit.await tk with
            | _ -> n
            | exception Wool.Submission_rejected -> n + 1)
          0 !tks
      in
      let ig = Wool.ingress_stats pool in
      Alcotest.(check bool) "controller shed something" true (shed > 0);
      Alcotest.(check int) "ledger agrees" shed ig.Wool.Pool.rejected;
      Alcotest.(check bool)
        "some work still ran" true
        (ig.Wool.Pool.executed > 0);
      Alcotest.(check (list string)) "invariants" []
        (Wool.Invariants.check pool))

let suite =
  [
    ( "lifecycle",
      [
        Alcotest.test_case "expired job dropped at dequeue" `Quick
          test_expired_drop;
        Alcotest.test_case "future deadline runs" `Quick
          test_future_deadline_runs;
        Alcotest.test_case "await_for times out" `Quick
          test_await_for_timeout;
        Alcotest.test_case "await_for resolves" `Quick
          test_await_for_resolves;
        Alcotest.test_case "cancel before start (all modes)" `Quick
          test_cancel_before_start_all_modes;
        Alcotest.test_case "cancel mid-run" `Quick test_cancel_mid_run;
        Alcotest.test_case "spawn boundary cancel" `Quick
          test_spawn_boundary_cancel;
        Alcotest.test_case "submit_retry contract" `Quick
          test_submit_retry_contract;
        Alcotest.test_case "submit_retry exhausts attempts" `Quick
          test_submit_retry_exhausts;
        Alcotest.test_case "submit_retry first-try admit" `Quick
          test_submit_retry_first_try;
        Alcotest.test_case "awaiters race shutdown (all modes)" `Quick
          test_awaiters_race_shutdown_all_modes;
        Alcotest.test_case "adaptive admission sheds under load" `Quick
          test_adaptive_sheds_under_load;
      ] );
  ]
