(* The benchmark harness: JSON schema round-trip and the regression
   comparator. The timed paths run on Tiny inputs — correctness of the
   plumbing, not of the numbers, is what is under test here. *)

module B = Wool_report.Bench_json
module Spec = Wool_report.Exp_common.Spec
module Json = Wool_trace.Json

let stat v =
  {
    B.n = 3;
    mean = v;
    median = v;
    stddev = 0.5;
    min = v -. 1.;
    max = v +. 1.;
    p10 = v -. 0.5;
    p90 = v +. 5.;
    p99 = v +. 8.;
    p999 = v +. 9.;
  }

let mk_run ?(mode = "private") ?(publicity = "default") ?(workers = 2)
    ?(median = 100.) ?(g_l_ns = 250.) () =
  {
    B.workload = "fib";
    descr = "fib(12)";
    mode;
    publicity;
    workers;
    repeats = 3;
    ok = true;
    serial_ns = stat 1000.;
    parallel_ns = stat median;
    overhead = median /. 1000.;
    speedup = 1000. /. median;
    spawns = 464;
    steals = 4;
    g_t_ns = 2.155;
    g_l_ns;
  }

let mk_report runs =
  { B.schema = B.schema_version; date = "2026-08-06"; size = "tiny"; ghz = 1.0;
    runs }

let test_roundtrip_synthetic () =
  let rep =
    mk_report
      [
        mk_run ();
        mk_run ~mode:"locked" ~median:250. ();
        (* no steals: G_L is infinite and must survive the round trip *)
        mk_run ~workers:1 ~publicity:"all-private" ~g_l_ns:infinity ();
      ]
  in
  let js = B.to_json rep in
  (match Json.validate js with
  | Ok () -> ()
  | Error e -> Alcotest.failf "emitted invalid JSON: %s" e);
  match B.of_json js with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok rep' ->
      (* %.17g float rendering is lossless, so equality is exact *)
      Alcotest.(check bool) "exact round trip" true (rep = rep')

let contains = Test_util.contains

let test_infinity_encodes_as_null () =
  let rep = mk_report [ mk_run ~g_l_ns:infinity () ] in
  let js = B.to_json rep in
  Alcotest.(check bool) "null in document" true (contains js "\"g_l_ns\":null");
  match B.of_json js with
  | Error e -> Alcotest.fail e
  | Ok rep' -> (
      match rep'.B.runs with
      | [ r ] -> Alcotest.(check bool) "infinite again" true (r.B.g_l_ns = infinity)
      | _ -> Alcotest.fail "run count changed")

let test_schema_version_rejected () =
  let rep = { (mk_report [ mk_run () ]) with B.schema = "wool-bench/0" } in
  match B.of_json (B.to_json rep) with
  | Ok _ -> Alcotest.fail "accepted a foreign schema version"
  | Error e ->
      Alcotest.(check bool) "names the expected schema" true
        (contains e B.schema_version)

let test_v1_document_accepted () =
  (* a committed wool-bench/1 baseline (no p99/p999) must still decode,
     with the missing tails defaulted to the recorded max *)
  let v1_stat =
    {|{"n":3,"mean":100,"median":100,"stddev":0.5,"min":99,"max":101,"p10":99.5,"p90":105}|}
  in
  let doc =
    Printf.sprintf
      {|{"schema":"wool-bench/1","date":"2026-08-06","size":"tiny","ghz":1.0,"runs":[{"workload":"fib","descr":"fib(12)","mode":"private","publicity":"default","workers":2,"repeats":3,"ok":true,"serial_ns":%s,"parallel_ns":%s,"overhead":0.1,"speedup":10,"spawns":464,"steals":4,"g_t_ns":2.155,"g_l_ns":250}]}|}
      v1_stat v1_stat
  in
  match B.of_json doc with
  | Error e -> Alcotest.fail e
  | Ok rep -> (
      Alcotest.(check string) "schema preserved" "wool-bench/1" rep.B.schema;
      match rep.B.runs with
      | [ r ] ->
          Alcotest.(check (float 1e-9)) "p99 defaults to max" 101.
            r.B.parallel_ns.B.p99;
          Alcotest.(check (float 1e-9)) "p999 defaults to max" 101.
            r.B.parallel_ns.B.p999
      | _ -> Alcotest.fail "run count changed")

let test_compare_flags_only_real_regressions () =
  (* baseline cell: median 100, p90 105; the rule is median' > p90 AND
     median' > 1.10 x median *)
  let baseline = mk_report [ mk_run ~median:100. () ] in
  let case median = mk_report [ mk_run ~median () ] in
  let n median = List.length (B.compare_reports ~baseline (case median)) in
  Alcotest.(check int) "equal is clean" 0 (n 100.);
  Alcotest.(check int) "inside the noise band (under p90)" 0 (n 104.);
  Alcotest.(check int) "over p90 but within 10%" 0 (n 108.);
  Alcotest.(check int) "over p90 and over 10%" 1 (n 116.);
  (* a different cell key never matches the baseline *)
  Alcotest.(check int) "unmatched cell skipped" 0
    (List.length
       (B.compare_reports ~baseline
          (mk_report [ mk_run ~workers:4 ~median:500. () ])));
  (* a legacy-spelled baseline cell still matches its canonical successor *)
  Alcotest.(check int) "legacy mode spelling matches" 1
    (List.length
       (B.compare_reports ~drift:1.0
          ~baseline:(mk_report [ mk_run ~mode:"chase-lev" ~median:100. () ])
          (mk_report [ mk_run ~mode:"clev" ~median:150. () ])))

let test_compare_ratio () =
  let baseline = mk_report [ mk_run ~median:100. () ] in
  match B.compare_reports ~baseline (mk_report [ mk_run ~median:150. () ]) with
  | [ r ] ->
      Alcotest.(check (float 1e-9)) "ratio" 1.5 r.B.r_ratio;
      Alcotest.(check (float 1e-9)) "baseline median" 100.
        r.B.r_baseline.B.parallel_ns.B.median
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l)

let test_compare_drift_correction () =
  (* six cells with distinct keys *)
  let keys = [ ("private", 1); ("private", 2); ("locked", 1);
               ("locked", 2); ("clev", 1); ("clev", 2) ]
  in
  let report_at f =
    mk_report
      (List.map (fun (mode, workers) -> mk_run ~mode ~workers ~median:(f mode workers) ()) keys)
  in
  let baseline = report_at (fun _ _ -> 100.) in
  (* the whole matrix 1.30x slower: machine drift, not a regression —
     without the correction every cell would be flagged *)
  let drifted = report_at (fun _ _ -> 130.) in
  Alcotest.(check (float 1e-9)) "drift estimated" 1.30
    (B.drift_ratio ~baseline drifted);
  Alcotest.(check int) "uniform shift is clean" 0
    (List.length (B.compare_reports ~baseline drifted));
  (* one cell 1.5x slower on an otherwise steady machine: flagged *)
  let one_bad =
    report_at (fun mode workers ->
        if mode = "clev" && workers = 2 then 150. else 100.)
  in
  (match B.compare_reports ~baseline one_bad with
  | [ r ] ->
      Alcotest.(check string) "the regressed cell" "clev" r.B.r_run.B.mode;
      Alcotest.(check (float 1e-9)) "its ratio" 1.5 r.B.r_ratio
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* the same bad cell on a drifted machine: still the only one flagged *)
  let drifted_one_bad =
    report_at (fun mode workers ->
        if mode = "clev" && workers = 2 then 195. else 130.)
  in
  match B.compare_reports ~baseline drifted_one_bad with
  | [ r ] -> Alcotest.(check string) "still flagged" "clev" r.B.r_run.B.mode
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l)

let test_measure_tiny_live () =
  (* one real measurement on the Tiny size: digests check out (ok), the
     matrix has the expected cells, and the emitted file re-reads *)
  let rep = B.measure ~size:Spec.Tiny ~workers:[ 1 ] ~repeats:2
      ~date:"2026-08-06" [ "fib" ]
  in
  (* 7 modes x 1 worker count + the 2 publicity cells (fib is
     idempotent, so the relaxed modes are measured too) *)
  Alcotest.(check int) "cells" 9 (List.length rep.B.runs);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.B.mode ^ " digest ok") true r.B.ok;
      Alcotest.(check bool) (r.B.mode ^ " spawned") true (r.B.spawns > 0))
    rep.B.runs;
  let file = Filename.temp_file "wool-bench-test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      B.write_file file rep;
      match B.read_file file with
      | Error e -> Alcotest.fail e
      | Ok rep' ->
          Alcotest.(check bool) "file round trip" true (rep = rep');
          (* self-comparison can never regress *)
          Alcotest.(check int) "self compare clean" 0
            (List.length (B.compare_reports ~baseline:rep' rep)))

let suite =
  [
    ( "bench",
      [
        Alcotest.test_case "round trip" `Quick test_roundtrip_synthetic;
        Alcotest.test_case "infinity as null" `Quick
          test_infinity_encodes_as_null;
        Alcotest.test_case "schema version" `Quick test_schema_version_rejected;
        Alcotest.test_case "v1 document accepted" `Quick
          test_v1_document_accepted;
        Alcotest.test_case "compare rule" `Quick
          test_compare_flags_only_real_regressions;
        Alcotest.test_case "compare ratio" `Quick test_compare_ratio;
        Alcotest.test_case "compare drift correction" `Quick
          test_compare_drift_correction;
        Alcotest.test_case "measure tiny" `Slow test_measure_tiny_live;
      ] );
  ]
