(* The ingress surface: Wool.Submit tickets (lifecycle, idempotence,
   exception transport), admission policies on a full lane, batch
   submission, shutdown-vs-submit determinism, and server-mode pools.

   Many cases want a lane nobody drains, so the tickets stay observable:
   a non-server pool with [workers = 1] provides that — its only worker
   is the creating domain, which drains lanes only inside [run]. *)

exception Boom of int

(* -- ticket lifecycle -- *)

let test_submit_await () =
  Test_util.with_pool ~workers:2 ~server:true (fun pool ->
      let tk = Wool.Submit.submit pool (fun _ctx -> 21 * 2) in
      Alcotest.(check int) "result" 42 (Wool.Submit.await tk))

let test_await_idempotent () =
  Test_util.with_pool ~workers:1 ~server:true (fun pool ->
      let tk = Wool.Submit.submit pool (fun _ctx -> "once") in
      Alcotest.(check string) "first" "once" (Wool.Submit.await tk);
      Alcotest.(check string) "second" "once" (Wool.Submit.await tk))

let test_poll_lifecycle () =
  (* nobody drains until [run]: the ticket is observably pending first *)
  let pool = Test_util.create ~workers:1 () in
  let tk = Wool.Submit.submit pool (fun _ctx -> 7) in
  (match Wool.Submit.poll tk with
  | `Pending -> ()
  | _ -> Alcotest.fail "undrained ticket must poll Pending");
  (* the lane is FIFO: run's own job queues behind ours, so helping
     run's job to completion necessarily ran ours first *)
  Alcotest.(check int) "run alongside" 5 (Wool.run pool (fun _ctx -> 5));
  (match Wool.Submit.poll tk with
  | `Done (Ok 7) -> ()
  | `Done (Ok v) -> Alcotest.failf "polled Done %d, expected 7" v
  | `Done (Error e) -> Alcotest.failf "polled %s" (Printexc.to_string e)
  | `Pending -> Alcotest.fail "drained ticket still Pending"
  | `Rejected | `Cancelled | `Expired ->
      Alcotest.fail "drained ticket polled a dropped state");
  Alcotest.(check int) "await after poll" 7 (Wool.Submit.await tk);
  Wool.shutdown pool

let test_exception_propagates () =
  Test_util.with_pool ~workers:1 ~server:true (fun pool ->
      let tk = Wool.Submit.submit pool (fun _ctx -> raise (Boom 3)) in
      (match Wool.Submit.poll tk with
      | `Done (Error (Boom 3)) -> ()
      | `Pending -> (
          (* racing the worker: await settles it, then re-poll *)
          match Wool.Submit.await tk with
          | exception Boom 3 -> ()
          | _ -> Alcotest.fail "await did not raise Boom")
      | _ -> Alcotest.fail "failed job must poll Done (Error _)");
      match Wool.Submit.await tk with
      | exception Boom 3 -> ()
      | exception e -> Alcotest.failf "raised %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "await of a failed job must raise")

let test_await_after_shutdown_rejects () =
  (* queued, never drained: the shutdown drain must resolve it rejected,
     and await afterwards must not hang *)
  let pool = Test_util.create ~workers:1 () in
  let tk = Wool.Submit.submit pool (fun _ctx -> 1) in
  Wool.shutdown pool;
  (match Wool.Submit.poll tk with
  | `Rejected -> ()
  | _ -> Alcotest.fail "shutdown-drained ticket must poll Rejected");
  match Wool.Submit.await tk with
  | exception Wool.Submission_rejected -> ()
  | exception e -> Alcotest.failf "raised %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "await of a shed ticket must raise Rejected"

let test_resolved_ticket_survives_shutdown () =
  let pool = Test_util.create ~workers:1 ~server:true () in
  let tk = Wool.Submit.submit pool (fun _ctx -> 99) in
  Alcotest.(check int) "before" 99 (Wool.Submit.await tk);
  Wool.shutdown pool;
  Alcotest.(check int) "after shutdown" 99 (Wool.Submit.await tk)

let test_submit_after_shutdown_rejects () =
  let pool = Test_util.create ~workers:1 () in
  Wool.shutdown pool;
  let tk = Wool.Submit.submit pool (fun _ctx -> 1) in
  (match Wool.Submit.poll tk with
  | `Rejected -> ()
  | _ -> Alcotest.fail "post-shutdown submit must resolve rejected");
  Alcotest.(check bool)
    "try_submit post-shutdown" true
    (Wool.Submit.try_submit pool (fun _ctx -> 1) = None)

(* -- admission policies -- *)

let test_reject_on_full_lane () =
  let pool =
    Test_util.create ~workers:1 ~injection_capacity:2 ~admission:Wool.Reject
      ()
  in
  let t1 = Wool.Submit.submit pool (fun _ctx -> 1) in
  let t2 = Wool.Submit.submit pool (fun _ctx -> 2) in
  let t3 = Wool.Submit.submit pool (fun _ctx -> 3) in
  (match Wool.Submit.poll t3 with
  | `Rejected -> ()
  | _ -> Alcotest.fail "third submit into a 2-slot lane must reject");
  (match Wool.Submit.poll t1 with
  | `Pending -> ()
  | _ -> Alcotest.fail "admitted tickets stay pending");
  let ig = Wool.ingress_stats pool in
  Alcotest.(check int) "submitted" 3 ig.Wool.Pool.submitted;
  Alcotest.(check int) "admitted" 2 ig.Wool.Pool.admitted;
  Alcotest.(check int) "rejected" 1 ig.Wool.Pool.rejected;
  Wool.shutdown pool;
  (* the two queued jobs were drained-rejected *)
  List.iter
    (fun tk ->
      match Wool.Submit.await tk with
      | exception Wool.Submission_rejected -> ()
      | _ -> Alcotest.fail "queued ticket must reject at shutdown")
    [ t1; t2 ];
  let ig = Wool.ingress_stats pool in
  Alcotest.(check int) "shed by drain" 2 ig.Wool.Pool.shed

let test_shed_oldest () =
  let pool =
    Test_util.create ~workers:1 ~injection_capacity:2
      ~admission:Wool.Shed_oldest ()
  in
  let t1 = Wool.Submit.submit pool (fun _ctx -> 1) in
  let _t2 = Wool.Submit.submit pool (fun _ctx -> 2) in
  let t3 = Wool.Submit.submit pool (fun _ctx -> 3) in
  (match Wool.Submit.poll t1 with
  | `Rejected -> ()
  | _ -> Alcotest.fail "oldest ticket must be shed");
  (match Wool.Submit.poll t3 with
  | `Pending -> ()
  | _ -> Alcotest.fail "newest submission must be admitted");
  let ig = Wool.ingress_stats pool in
  Alcotest.(check int) "all admitted" 3 ig.Wool.Pool.admitted;
  Alcotest.(check bool) "shed at least one" true (ig.Wool.Pool.shed >= 1);
  Wool.shutdown pool

let test_try_submit_full_lane () =
  let pool =
    Test_util.create ~workers:1 ~injection_capacity:2 ~admission:Wool.Block
      ()
  in
  let _t1 = Wool.Submit.submit pool (fun _ctx -> 1) in
  let _t2 = Wool.Submit.submit pool (fun _ctx -> 2) in
  (* Block admission would wait; try_submit must bail out instead *)
  Alcotest.(check bool)
    "one-shot admission" true
    (Wool.Submit.try_submit pool (fun _ctx -> 3) = None);
  Wool.shutdown pool

(* -- batches -- *)

let test_submit_batch () =
  Test_util.with_pool ~workers:2 ~server:true (fun pool ->
      let tks =
        Wool.Submit.submit_batch pool
          (List.init 5 (fun i _ctx -> i * i))
      in
      Alcotest.(check int) "five tickets" 5 (List.length tks);
      List.iteri
        (fun i tk ->
          Alcotest.(check int)
            (Printf.sprintf "batch element %d" i)
            (i * i) (Wool.Submit.await tk))
        tks)

let test_submit_batch_partial_reject () =
  let pool =
    Test_util.create ~workers:1 ~injection_capacity:2 ~admission:Wool.Reject
      ()
  in
  let tks = Wool.Submit.submit_batch pool (List.init 4 (fun i _ctx -> i)) in
  let pending, rejected =
    List.partition (fun tk -> Wool.Submit.poll tk = `Pending) tks
  in
  Alcotest.(check int) "admitted prefix" 2 (List.length pending);
  Alcotest.(check int) "rejected suffix" 2 (List.length rejected);
  Wool.shutdown pool

(* -- server mode and multi-producer traffic -- *)

let test_server_run () =
  Test_util.with_pool ~workers:2 ~server:true (fun pool ->
      Alcotest.(check int) "fib 10" (Test_util.fib_serial 10)
        (Wool.run pool (fun ctx -> Test_util.fib ctx 10)))

let test_multi_producer () =
  (* two non-worker producer domains submitting concurrently into a
     server pool; every ticket must resolve with its own value *)
  Test_util.with_pool ~workers:2 ~server:true (fun pool ->
      let producer base () =
        List.init 8 (fun i ->
            (base + i, Wool.Submit.submit pool (fun _ctx -> base + i)))
      in
      let d1 = Domain.spawn (producer 100) in
      let d2 = Domain.spawn (producer 200) in
      let tks = Domain.join d1 @ Domain.join d2 in
      List.iter
        (fun (expect, tk) ->
          Alcotest.(check int) "producer result" expect
            (Wool.Submit.await tk))
        tks;
      let ig = Wool.ingress_stats pool in
      Alcotest.(check int) "all submitted" 16 ig.Wool.Pool.submitted;
      Alcotest.(check int) "all executed" 16 ig.Wool.Pool.executed;
      Alcotest.(check (list string))
        "quiescent" [] (Wool.Invariants.check pool))

let test_injected_jobs_can_spawn () =
  (* an injected job is real task code: it gets a ctx and may fork *)
  Test_util.with_pool ~workers:2 ~server:true (fun pool ->
      let tk =
        Wool.Submit.submit pool (fun ctx -> Test_util.fib ctx 12)
      in
      Alcotest.(check int) "fib 12 via ingress" (Test_util.fib_serial 12)
        (Wool.Submit.await tk))

(* -- relaxed pools: the submitter must declare idempotence -- *)

let contains = Test_util.contains

(* The ingress counterpart of the spawn/spawn_idempotent split: on an
   at-least-once pool every submission entry point refuses a job the
   caller has not declared idempotent, and the error names the opt-in. *)
let test_submit_requires_idempotent_on_relaxed () =
  List.iter
    (fun (nm, mode) ->
      Test_util.with_pool ~workers:1 ~mode (fun pool ->
          let rejects what f =
            match f () with
            | () -> Alcotest.failf "%s: %s accepted a non-idempotent job" nm what
            | exception Invalid_argument m ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s error names the opt-in" nm what)
                  true
                  (contains m ("Wool.Submit." ^ what)
                  && contains m "at-least-once"
                  && contains m "~idempotent:true")
          in
          rejects "submit" (fun () ->
              ignore (Wool.Submit.submit pool (fun _ctx -> 1) : int Wool.Submit.ticket));
          rejects "try_submit" (fun () ->
              ignore
                (Wool.Submit.try_submit pool (fun _ctx -> 1)
                  : int Wool.Submit.ticket option));
          rejects "submit_batch" (fun () ->
              ignore
                (Wool.Submit.submit_batch pool [ (fun _ctx -> 1) ]
                  : int Wool.Submit.ticket list));
          (* the declaration makes the same submission legal *)
          let tk = Wool.Submit.submit ~idempotent:true pool (fun _ctx -> 42) in
          Alcotest.(check int) (nm ^ " run alongside") 0
            (Wool.run pool (fun _ctx -> 0));
          Alcotest.(check int) (nm ^ " idempotent submit runs") 42
            (Wool.Submit.await tk)))
    Test_util.relaxed_modes

(* -- duplicate completions: the ticket layer settles exactly once -- *)

(* Force the [Dup] drain fault so the submitted body really executes
   twice, then prove the ticket still resolves exactly once:
   [await]/[poll] observe the first result only, the in-flight count
   settles, and the invariant checker stays green. A 1-worker non-server
   pool drains the lane synchronously inside [run], so there is no racing
   second execution left when we read the counter. Swept over an
   exactly-once mode (the fault is the only duplication source) and both
   at-least-once modes (the dedup must hold on top of relaxed spawns). *)
let test_ticket_dedup_under_dup_fault () =
  List.iter
    (fun (nm, mode) ->
      let relaxed = Wool.Mode.is_relaxed mode in
      let plan =
        Wool.Fault.Plan.make ~name:"dup-drain" ~seed:7
          [
            {
              Wool.Fault.Plan.site = Wool.Fault.Site.Drain;
              kind = Wool.Fault.Kind.Dup;
              rate = 1.0;
              max_fires = 8;
            };
          ]
      in
      let config =
        Wool.Config.make ~workers:1 ~mode ~allow_relaxed:relaxed ~faults:plan
          ()
      in
      let pool = Wool.create ~config () in
      let runs = Atomic.make 0 in
      let tk =
        Wool.Submit.submit ~idempotent:relaxed pool (fun _ctx ->
            Atomic.fetch_and_add runs 1)
      in
      Alcotest.(check int) (nm ^ " run alongside") 0
        (Wool.run pool (fun _ctx -> 0));
      Alcotest.(check int) (nm ^ " body executed twice") 2 (Atomic.get runs);
      (* first-writer-wins: the second completion (which returned 1) is
         invisible to the ticket *)
      Alcotest.(check int) (nm ^ " await sees first result") 0
        (Wool.Submit.await tk);
      (match Wool.Submit.poll tk with
      | `Done (Ok 0) -> ()
      | `Done (Ok v) ->
          Alcotest.failf "%s: poll observed duplicate result %d" nm v
      | _ -> Alcotest.failf "%s: drained ticket must poll Done (Ok _)" nm);
      let ig = Wool.ingress_stats pool in
      Alcotest.(check int) (nm ^ " inflight settled") 0 ig.Wool.Pool.inflight;
      Alcotest.(check (list string))
        (nm ^ " invariants") []
        (Wool.Invariants.check pool);
      Wool.shutdown pool)
    [
      ("private", Wool.Private);
      ("ws_mult", Wool.Ws_mult);
      ("lowsync", Wool.Lowsync);
    ]

let suite =
  [
    ( "submit",
      [
        Alcotest.test_case "submit and await" `Quick test_submit_await;
        Alcotest.test_case "await idempotent" `Quick test_await_idempotent;
        Alcotest.test_case "poll lifecycle" `Quick test_poll_lifecycle;
        Alcotest.test_case "exception propagates" `Quick
          test_exception_propagates;
        Alcotest.test_case "await after shutdown rejects" `Quick
          test_await_after_shutdown_rejects;
        Alcotest.test_case "resolved ticket survives shutdown" `Quick
          test_resolved_ticket_survives_shutdown;
        Alcotest.test_case "submit after shutdown rejects" `Quick
          test_submit_after_shutdown_rejects;
        Alcotest.test_case "reject on full lane" `Quick
          test_reject_on_full_lane;
        Alcotest.test_case "shed oldest" `Quick test_shed_oldest;
        Alcotest.test_case "try_submit on full lane" `Quick
          test_try_submit_full_lane;
        Alcotest.test_case "submit_batch" `Quick test_submit_batch;
        Alcotest.test_case "batch partial reject" `Quick
          test_submit_batch_partial_reject;
        Alcotest.test_case "server-mode run" `Quick test_server_run;
        Alcotest.test_case "multi-producer domains" `Quick
          test_multi_producer;
        Alcotest.test_case "injected jobs can spawn" `Quick
          test_injected_jobs_can_spawn;
        Alcotest.test_case "relaxed submit requires idempotent" `Quick
          test_submit_requires_idempotent_on_relaxed;
        Alcotest.test_case "ticket dedup under dup fault" `Quick
          test_ticket_dedup_under_dup_fault;
      ] );
  ]
