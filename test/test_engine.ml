module E = Wool_sim.Engine
module P = Wool_sim.Policy
module Tt = Wool_ir.Task_tree
module W = Wool_workloads.Workload

let policies =
  [ P.wool; P.wool_all_public; P.tbb; P.cilk; P.openmp_tasks; P.lock_base;
    P.lock_peek; P.lock_trylock; P.nolock ]

let stress_tree = Wool_workloads.Stress.tree ~height:6 ~leaf_iters:2048
let fib_tree = Wool_workloads.Fib.tree 16

let test_validation () =
  Alcotest.check_raises "workers" (Invalid_argument "Engine.run: workers must be positive")
    (fun () -> ignore (E.run ~policy:P.wool ~workers:0 (Tt.leaf 1)));
  Alcotest.check_raises "loop policy"
    (Invalid_argument "Engine.run: Loop_static policies are run by Loop_sim")
    (fun () -> ignore (E.run ~policy:P.openmp_loop ~workers:1 (Tt.leaf 1)))

let test_single_leaf_exact () =
  let r = E.run ~policy:P.wool ~workers:1 (Tt.leaf 12345) in
  Alcotest.(check int) "time = startup + work"
    (P.wool.P.costs.Wool_sim.Costs.startup + 12345)
    r.E.time;
  Alcotest.(check int) "work" 12345 r.E.work;
  Alcotest.(check int) "no steals" 0 r.E.steals

let test_work_conservation_all_policies () =
  let expected = Tt.work stress_tree in
  List.iter
    (fun pol ->
      List.iter
        (fun p ->
          let r = E.run ~policy:pol ~workers:p stress_tree in
          Alcotest.(check int)
            (Printf.sprintf "%s p%d executes all work" pol.P.name p)
            expected r.E.work)
        [ 1; 2; 5 ])
    policies

let test_no_overtaking_perfect_speedup () =
  List.iter
    (fun pol ->
      List.iter
        (fun p ->
          let r = E.run ~policy:pol ~workers:p stress_tree in
          Alcotest.(check bool)
            (Printf.sprintf "%s p%d: p*T >= work" pol.P.name p)
            true
            (p * r.E.time >= r.E.work))
        [ 1; 2; 4; 8 ])
    policies

let coarse_tree = Wool_workloads.Stress.tree ~height:6 ~leaf_iters:50_000

let test_parallel_helps () =
  (* a coarse balanced tree must speed up under every scheduler *)
  List.iter
    (fun pol ->
      let t1 = (E.run ~policy:pol ~workers:1 coarse_tree).E.time in
      let t4 = (E.run ~policy:pol ~workers:4 coarse_tree).E.time in
      Alcotest.(check bool)
        (Printf.sprintf "%s speeds up (%d -> %d)" pol.P.name t1 t4)
        true
        (float_of_int t1 /. float_of_int t4 > 1.5))
    policies

let test_deterministic () =
  List.iter
    (fun pol ->
      let a = E.run ~seed:9 ~policy:pol ~workers:4 fib_tree in
      let b = E.run ~seed:9 ~policy:pol ~workers:4 fib_tree in
      Alcotest.(check int) (pol.P.name ^ " time") a.E.time b.E.time;
      Alcotest.(check int) (pol.P.name ^ " hash") a.E.trace_hash b.E.trace_hash;
      Alcotest.(check int) (pol.P.name ^ " steals") a.E.steals b.E.steals)
    [ P.wool; P.cilk; P.tbb ]

let test_seed_changes_trace () =
  let a = E.run ~seed:1 ~policy:P.wool ~workers:4 fib_tree in
  let b = E.run ~seed:2 ~policy:P.wool ~workers:4 fib_tree in
  Alcotest.(check bool) "different traces" true (a.E.trace_hash <> b.E.trace_hash)

let test_no_steals_single_worker () =
  List.iter
    (fun pol ->
      let r = E.run ~policy:pol ~workers:1 fib_tree in
      Alcotest.(check int) (pol.P.name ^ " steals") 0 r.E.steals;
      Alcotest.(check int) (pol.P.name ^ " leap") 0 r.E.leap_steals)
    policies

let test_steals_happen_in_parallel () =
  let r = E.run ~policy:P.wool ~workers:4 stress_tree in
  Alcotest.(check bool) "some steals" true (r.E.steals > 0);
  Alcotest.(check bool) "leap subset" true (r.E.leap_steals <= r.E.steals)

let test_breakdown_consistency () =
  List.iter
    (fun pol ->
      let p = 4 in
      let r = E.run ~policy:pol ~workers:p stress_tree in
      Alcotest.(check int) "breakdown rows" p (Array.length r.E.breakdown);
      let busy =
        Array.fold_left
          (fun acc row -> acc + Array.fold_left ( + ) 0 row)
          0 r.E.breakdown
      in
      (* workers may be charged for an operation in flight when the root
         completes, so allow one op's slack per worker *)
      Alcotest.(check bool) "busy time within p*T plus slack" true
        (busy <= p * (r.E.time + 100_000));
      let app =
        Array.fold_left
          (fun acc row ->
            acc
            + row.(E.category_index E.NA)
            + row.(E.category_index E.LA))
          0 r.E.breakdown
      in
      Alcotest.(check bool) "app time covers the work" true (app >= r.E.work))
    [ P.wool; P.tbb; P.cilk ]

let test_plain_wait_policy_completes () =
  let pol =
    P.v ~name:"plain-wait"
      ~flavor:
        (P.Steal_child
           { sync = P.Nolock_state; blocked_join = P.Plain_wait;
             publicity = P.All_public })
      ~costs:Wool_sim.Costs.wool ()
  in
  let r = E.run ~policy:pol ~workers:4 stress_tree in
  Alcotest.(check int) "work" (Tt.work stress_tree) r.E.work

let test_max_events () =
  Alcotest.check_raises "budget" (Failure "Engine.run: max_events exceeded")
    (fun () ->
      ignore (E.run ~max_events:10 ~policy:P.wool ~workers:2 stress_tree))

let test_steal_parent_handles_deep_calls () =
  (* Call chains mix with spawns; exercises continuation migration through
     called frames. *)
  let t =
    Tt.make
      [
        Tt.Call (Tt.fork2 (Tt.leaf 30_000) (Tt.leaf 30_000));
        Tt.Work 100;
        Tt.Spawn (Tt.fork2 (Tt.leaf 20_000) (Tt.leaf 20_000));
        Tt.Call (Tt.leaf 10_000);
        Tt.Join;
      ]
  in
  List.iter
    (fun p ->
      let r = E.run ~policy:P.cilk ~workers:p t in
      Alcotest.(check int) "work" (Tt.work t) r.E.work)
    [ 1; 2; 3; 8 ]

let test_cholesky_tree_all_policies () =
  (* data-dependent irregular tree as a scheduler torture test *)
  let t = Wool_workloads.Cholesky.tree ~seed:3 ~n:40 ~nz:120 () in
  List.iter
    (fun pol ->
      let r = E.run ~policy:pol ~workers:6 t in
      Alcotest.(check int) (pol.P.name ^ " work") (Tt.work t) r.E.work)
    policies

let test_speedup_helper () =
  let base = E.run ~policy:P.wool ~workers:1 stress_tree in
  let r = E.run ~policy:P.wool ~workers:4 stress_tree in
  Alcotest.(check (float 1e-9)) "speedup def"
    (float_of_int base.E.time /. float_of_int r.E.time)
    (E.speedup ~base r)

let test_victim_selection_strategies () =
  List.iter
    (fun sel ->
      let r = E.run ~victim_selection:sel ~policy:P.wool ~workers:4 stress_tree in
      Alcotest.(check int) "work conserved" (Tt.work stress_tree) r.E.work;
      Alcotest.(check bool) "steals happen" true (r.E.steals > 0))
    [
      E.Random_victim; E.Round_robin; E.Last_victim; E.Leapfrog_biased;
      E.Socket_local;
    ]

let test_victim_selection_deterministic () =
  (* per (seed, selector) the whole event stream must reproduce *)
  List.iter
    (fun sel ->
      List.iter
        (fun seed ->
          let go () =
            E.run ~seed ~victim_selection:sel ~policy:P.wool ~workers:4
              stress_tree
          in
          let a = go () and b = go () in
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d hash stable"
               (Wool_policy.Selector.name sel) seed)
            a.E.trace_hash b.E.trace_hash;
          Alcotest.(check int) "time stable" a.E.time b.E.time;
          Alcotest.(check int) "steals stable" a.E.steals b.E.steals)
        [ 42; 7 ])
    Wool_policy.Selector.all

let test_steal_policy_runs () =
  (* a full Wool_policy.t (the same value Wool.Config accepts) drives the
     sim: work conserved and deterministic for every sweep point, with the
     backoff model on *)
  List.iter
    (fun sp ->
      let go () =
        E.run ~steal_policy:sp ~policy:P.wool ~workers:4 stress_tree
      in
      let r = go () in
      Alcotest.(check int)
        (Wool_policy.name sp ^ " work conserved")
        (Tt.work stress_tree) r.E.work;
      Alcotest.(check int)
        (Wool_policy.name sp ^ " deterministic")
        r.E.trace_hash (go ()).E.trace_hash)
    (Wool_policy.sweep ());
  (* a policy packaged in the sim Policy.t is picked up too *)
  let sp = Wool_policy.make ~selector:Wool_policy.Selector.Round_robin () in
  let via_arg = E.run ~steal_policy:sp ~policy:P.wool ~workers:4 stress_tree in
  let via_policy =
    E.run ~policy:(P.with_steal sp P.wool) ~workers:4 stress_tree
  in
  Alcotest.(check int) "policy.steal = ~steal_policy" via_arg.E.trace_hash
    via_policy.E.trace_hash;
  Alcotest.check_raises "invalid nap_cycles"
    (Invalid_argument "Engine.run: nap_cycles must be positive") (fun () ->
      ignore
        (E.run ~steal_policy:sp ~nap_cycles:0 ~policy:P.wool ~workers:2
           stress_tree))

let test_default_policy_matches_legacy () =
  (* no steal_policy means the historical stream: identical to an explicit
     legacy victim_selection run, hash and all *)
  let legacy =
    E.run ~victim_selection:E.Random_victim ~policy:P.wool ~workers:4
      stress_tree
  in
  let plain = E.run ~policy:P.wool ~workers:4 stress_tree in
  Alcotest.(check int) "hash unchanged" legacy.E.trace_hash plain.E.trace_hash;
  Alcotest.(check int) "time unchanged" legacy.E.time plain.E.time

let test_steal_batch () =
  List.iter
    (fun batch ->
      let r = E.run ~steal_batch:batch ~policy:P.wool_all_public ~workers:4 stress_tree in
      Alcotest.(check int)
        (Printf.sprintf "batch %d conserves work" batch)
        (Tt.work stress_tree) r.E.work)
    [ 1; 2; 4; 16 ];
  Alcotest.check_raises "invalid batch"
    (Invalid_argument "Engine.run: steal_batch must be positive") (fun () ->
      ignore (E.run ~steal_batch:0 ~policy:P.wool ~workers:2 stress_tree))

let test_sockets () =
  List.iter
    (fun sockets ->
      let r = E.run ~sockets ~policy:P.wool ~workers:8 stress_tree in
      Alcotest.(check int)
        (Printf.sprintf "%d sockets conserve work" sockets)
        (Tt.work stress_tree) r.E.work)
    [ 1; 2; 4; 8 ];
  let r =
    E.run ~sockets:2 ~victim_selection:E.Socket_local ~policy:P.wool ~workers:8
      stress_tree
  in
  Alcotest.(check int) "socket-local conserves work" (Tt.work stress_tree)
    r.E.work;
  Alcotest.check_raises "invalid sockets"
    (Invalid_argument "Engine.run: sockets must be positive") (fun () ->
      ignore (E.run ~sockets:0 ~policy:P.wool ~workers:2 stress_tree))

(* The steal-heavy tree the committed policy grid uses: leaf work is
   small against the steal cost, so victim choice dominates. *)
let grid_tree = Wool_workloads.Stress.tree ~height:15 ~leaf_iters:300

let grid_cell ~workers selector =
  let topology = Wool_policy.Topology.make ~sockets:4 ~workers () in
  let steal_policy = Wool_policy.make ~selector () in
  E.run ~seed:42 ~steal_policy ~topology ~policy:P.wool ~workers grid_tree

(* The scaled locality grid: at 16/32/64 virtual cores on a 4-socket
   machine, hierarchical probing must strictly cut cross-socket steals
   vs flat random, and the total simulated time must stay inside the
   committed tolerance band (it currently *wins* at every scale; the
   band tolerates up to +10% before someone has to re-own the
   trade-off). Deterministic: seed 42, same draw sequences as the
   committed POLICY_GRID.json. *)
let test_topology_grid_locality () =
  List.iter
    (fun workers ->
      let random = grid_cell ~workers Wool_policy.Selector.Random_victim in
      let hier =
        grid_cell ~workers
          (Wool_policy.Selector.Hierarchical
             (Wool_policy.Hier.auto ~sockets:4 ()))
      in
      Alcotest.(check bool)
        (Printf.sprintf "p=%d hier cuts remote steals (%d vs %d)" workers
           hier.E.remote_steals random.E.remote_steals)
        true
        (hier.E.remote_steals < random.E.remote_steals);
      let ratio = float_of_int hier.E.time /. float_of_int random.E.time in
      Alcotest.(check bool)
        (Printf.sprintf "p=%d hier time within band (ratio %.2f)" workers
           ratio)
        true
        (ratio >= 0.40 && ratio <= 1.10);
      Alcotest.(check int)
        (Printf.sprintf "p=%d hier conserves work" workers)
        (Tt.work grid_tree) hier.E.work)
    [ 16; 32; 64 ]

let test_topology_remote_counts () =
  (* one socket: every steal is local by definition *)
  let topology = Wool_policy.Topology.make ~sockets:1 ~workers:16 () in
  let r = E.run ~seed:42 ~topology ~policy:P.wool ~workers:16 grid_tree in
  Alcotest.(check int) "one socket, no remote steals" 0 r.E.remote_steals;
  (* multi-socket: remote steals are a subset of all steals *)
  let r = grid_cell ~workers:32 Wool_policy.Selector.Random_victim in
  Alcotest.(check bool) "remote <= steals" true
    (r.E.remote_steals <= r.E.steals && r.E.remote_steals > 0)

let test_topology_equals_sockets_shorthand () =
  (* [~topology (make ~sockets)] is the documented equivalent of the
     legacy [~sockets] shorthand — bit-for-bit, trace hash included *)
  let a = E.run ~seed:7 ~sockets:4 ~policy:P.wool ~workers:16 stress_tree in
  let topology = Wool_policy.Topology.make ~sockets:4 ~workers:16 () in
  let b = E.run ~seed:7 ~topology ~policy:P.wool ~workers:16 stress_tree in
  Alcotest.(check int) "time" a.E.time b.E.time;
  Alcotest.(check int) "steals" a.E.steals b.E.steals;
  Alcotest.(check int) "remote" a.E.remote_steals b.E.remote_steals;
  Alcotest.(check bool) "trace hash" true (a.E.trace_hash = b.E.trace_hash)

let test_topology_validation () =
  let topology = Wool_policy.Topology.make ~sockets:2 ~workers:8 () in
  Alcotest.check_raises "worker count mismatch"
    (Invalid_argument "Engine.run: topology worker count must match workers")
    (fun () ->
      ignore (E.run ~topology ~policy:P.wool ~workers:4 stress_tree))

let test_max_pool_depth () =
  (* a flat 100-task spawn loop: steal-child pools hold ~100 descriptors;
     the steal-parent pool holds only the current continuation *)
  let loop =
    W.root (W.spawn_loop ~n:100 ~leaf_work:200 ())
  in
  let child = E.run ~policy:P.wool_all_public ~workers:2 loop in
  let parent = E.run ~policy:P.cilk ~workers:2 loop in
  Alcotest.(check bool) "steal-child O(n)" true (child.E.max_pool_depth > 50);
  Alcotest.(check bool) "steal-parent O(1)" true (parent.E.max_pool_depth <= 4)

let test_category_names () =
  Alcotest.(check int) "count" 5 E.n_categories;
  let names = List.map E.category_name [ E.TR; E.LA; E.NA; E.ST; E.LF ] in
  Alcotest.(check (list string)) "names" [ "TR"; "LA"; "NA"; "ST"; "LF" ] names;
  List.iteri
    (fun i c -> Alcotest.(check int) "index" i (E.category_index c))
    [ E.TR; E.LA; E.NA; E.ST; E.LF ]

let qcheck_span_lower_bound =
  (* the critical path is a hard floor on completion time, whatever the
     scheduler does (costs only add) *)
  let gen =
    QCheck.Gen.(
      sized_size (int_range 0 5) @@ fix (fun self n ->
          if n = 0 then map Tt.leaf (int_range 1 2000)
          else
            oneof
              [
                map Tt.leaf (int_range 1 2000);
                map2 (fun a b -> Tt.fork2 a b) (self (n / 2)) (self (n / 2));
              ]))
  in
  QCheck.Test.make ~name:"simulated time >= critical path" ~count:60
    (QCheck.make gen) (fun t ->
      let span = Wool_metrics.Span.span ~overhead:0 t in
      List.for_all
        (fun p ->
          List.for_all
            (fun pol -> (E.run ~policy:pol ~workers:p t).E.time >= span)
            [ P.wool; P.cilk; P.tbb ])
        [ 1; 2; 4 ])

let qcheck_conservation_random_trees =
  let gen =
    QCheck.Gen.(
      sized_size (int_range 0 5) @@ fix (fun self n ->
          if n = 0 then map Tt.leaf (int_range 1 2000)
          else
            oneof
              [
                map Tt.leaf (int_range 1 2000);
                map2 (fun a b -> Tt.fork2 ~pre:2 a b) (self (n / 2)) (self (n / 2));
                map2
                  (fun a b -> Tt.make [ Tt.Call a; Tt.Spawn b; Tt.Work 5; Tt.Join ])
                  (self (n / 2)) (self (n / 2));
              ]))
  in
  QCheck.Test.make ~name:"engine conserves work on random trees" ~count:60
    (QCheck.make gen) (fun t ->
      List.for_all
        (fun pol ->
          let r = E.run ~policy:pol ~workers:3 t in
          r.E.work = Tt.work t)
        [ P.wool; P.cilk; P.tbb ])

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "single leaf exact" `Quick test_single_leaf_exact;
        Alcotest.test_case "work conservation" `Quick
          test_work_conservation_all_policies;
        Alcotest.test_case "no super-linear speedup" `Quick
          test_no_overtaking_perfect_speedup;
        Alcotest.test_case "parallel helps" `Quick test_parallel_helps;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "seed changes trace" `Quick test_seed_changes_trace;
        Alcotest.test_case "no steals on one worker" `Quick
          test_no_steals_single_worker;
        Alcotest.test_case "steals in parallel" `Quick
          test_steals_happen_in_parallel;
        Alcotest.test_case "breakdown consistency" `Quick
          test_breakdown_consistency;
        Alcotest.test_case "plain-wait completes" `Quick
          test_plain_wait_policy_completes;
        Alcotest.test_case "max_events" `Quick test_max_events;
        Alcotest.test_case "steal-parent deep calls" `Quick
          test_steal_parent_handles_deep_calls;
        Alcotest.test_case "cholesky tree all policies" `Quick
          test_cholesky_tree_all_policies;
        Alcotest.test_case "speedup helper" `Quick test_speedup_helper;
        Alcotest.test_case "victim selection" `Quick
          test_victim_selection_strategies;
        Alcotest.test_case "victim selection deterministic" `Quick
          test_victim_selection_deterministic;
        Alcotest.test_case "steal policy runs" `Quick test_steal_policy_runs;
        Alcotest.test_case "default policy matches legacy" `Quick
          test_default_policy_matches_legacy;
        Alcotest.test_case "steal batch" `Quick test_steal_batch;
        Alcotest.test_case "sockets" `Quick test_sockets;
        Alcotest.test_case "topology grid locality" `Quick
          test_topology_grid_locality;
        Alcotest.test_case "topology remote counts" `Quick
          test_topology_remote_counts;
        Alcotest.test_case "topology equals sockets shorthand" `Quick
          test_topology_equals_sockets_shorthand;
        Alcotest.test_case "topology validation" `Quick
          test_topology_validation;
        Alcotest.test_case "max pool depth" `Quick test_max_pool_depth;
        Alcotest.test_case "category names" `Quick test_category_names;
        QCheck_alcotest.to_alcotest qcheck_span_lower_bound;
        QCheck_alcotest.to_alcotest qcheck_conservation_random_trees;
      ] );
  ]
