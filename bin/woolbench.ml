(* woolbench: regenerate the paper's tables and figures.

   `woolbench list` shows the available experiments; `woolbench <key>`
   runs one; `woolbench all` runs everything (as the final harness does).
   `woolbench trace <workload>` runs a workload with scheduler tracing on
   and writes a Chrome trace_event JSON next to a summary report.
   `woolbench policy <workload>` sweeps the steal policies (victim
   selection x idle backoff) over a workload on the real runtime.
   `woolbench faults` stress-tests the scheduler under seeded fault
   plans and checks protocol invariants after every run.
   `woolbench bench <workload|all>` runs the tier-1 benchmark matrix and
   writes a schema-stable BENCH_<date>.json for the perf trajectory.
   `woolbench serve` drives a server-mode pool with open-loop Poisson
   traffic from external producer domains and reports ingress verdicts
   next to sojourn-latency percentiles. *)

open Cmdliner

let run_experiment keys =
  match keys with
  | [] | [ "all" ] ->
      Wool_report.Registry.run_all ();
      `Ok ()
  | [ "list" ] ->
      List.iter
        (fun e ->
          Printf.printf "%-8s %s\n" e.Wool_report.Registry.key
            e.Wool_report.Registry.title)
        Wool_report.Registry.all;
      `Ok ()
  | keys ->
      let missing =
        List.filter (fun k -> Wool_report.Registry.find k = None) keys
      in
      if missing <> [] then
        `Error
          ( false,
            Printf.sprintf "unknown experiment(s): %s (try `woolbench list`)"
              (String.concat ", " missing) )
      else begin
        List.iter
          (fun k ->
            match Wool_report.Registry.find k with
            | Some e -> e.Wool_report.Registry.run ()
            | None -> assert false)
          keys;
        `Ok ()
      end

let keys_arg =
  let doc = "Experiments to run: list | all | fig1 table1 table2 table3 fig4 fig5 table4 fig6." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let experiments_term = Term.(ret (const run_experiment $ keys_arg))

let trace_cmd =
  let workload_arg =
    let doc =
      Printf.sprintf "Workload to trace: %s."
        (String.concat " | " Wool_report.Trace_summary.workloads)
    in
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc)
  in
  let workers_arg =
    let doc = "Number of worker domains." in
    Arg.(value & opt int 4 & info [ "w"; "workers" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Output path for the Chrome trace_event JSON." in
    Arg.(
      value & opt string "trace.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let check_arg =
    let doc = "Re-read the emitted file and validate it as JSON." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run workers out check workload =
    if workers < 1 then `Error (false, "--workers must be at least 1")
    else
      match Wool_report.Trace_summary.run ~workers ~out ~check workload with
      | () -> `Ok ()
      | exception Failure msg -> `Error (false, msg)
      | exception Sys_error msg -> `Error (false, msg)
  in
  let doc = "trace a workload and write a Chrome trace_event JSON" in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(ret (const run $ workers_arg $ out_arg $ check_arg $ workload_arg))

let policy_cmd =
  let workload_arg =
    let doc =
      Printf.sprintf
        "Workload to sweep: %s. Not needed with --grid (which runs its own \
         simulated stress workload)."
        (String.concat " | " Wool_report.Trace_summary.workloads)
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)
  in
  let workers_arg =
    let doc = "Number of worker domains." in
    Arg.(value & opt int 4 & info [ "w"; "workers" ] ~docv:"N" ~doc)
  in
  let quick_arg =
    let doc =
      "Sweep only the victim selectors under the default backoff (one \
       quick run each) instead of the full selector x backoff grid."
    in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let grid_arg =
    let doc =
      "Run the locality policy grid instead of a workload sweep: simulate \
       flat vs hierarchical stealing at 16/32/64 virtual cores on a \
       4-socket topology, print the crossover, and run one real-pool \
       hierarchical check."
    in
    Arg.(value & flag & info [ "grid" ] ~doc)
  in
  let out_arg =
    let doc = "With --grid: also write the grid as a JSON snapshot." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let compare_arg =
    let doc =
      "With --grid: diff the freshly computed grid against a committed \
       snapshot (e.g. POLICY_GRID.json); any cell drift is an error."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"BASELINE.json" ~doc)
  in
  let run workers quick grid out compare workload =
    if workers < 1 then `Error (false, "--workers must be at least 1")
    else if grid then begin
      let module G = Wool_report.Policy_grid in
      match
        let g = G.compute () in
        G.print g;
        (match out with
        | Some path ->
            G.write_file path g;
            Printf.printf "wrote %s\n" path
        | None -> ());
        (match compare with
        | None -> Ok ()
        | Some path -> (
            match G.read_file path with
            | Error msg -> Error msg
            | Ok baseline -> (
                match G.compare_grids ~baseline ~fresh:g with
                | [] ->
                    Printf.printf "grid matches %s (%d cells)\n" path
                      (List.length g.G.cells);
                    Ok ()
                | issues ->
                    List.iter (Printf.printf "MISMATCH %s\n") issues;
                    Error
                      (Printf.sprintf "%d grid mismatch(es) against %s"
                         (List.length issues) path))))
      with
      | Ok () -> (
          match G.real_check ~workers () with
          | () -> `Ok ()
          | exception Failure msg -> `Error (false, msg))
      | Error msg -> `Error (false, msg)
      | exception Failure msg -> `Error (false, msg)
      | exception Sys_error msg -> `Error (false, msg)
    end
    else
      match workload with
      | None ->
          `Error (false, "a WORKLOAD argument is required without --grid")
      | Some workload -> (
          match Wool_report.Policy_sweep.run ~workers ~quick workload with
          | (_ : Wool_report.Policy_sweep.row list) -> `Ok ()
          | exception Failure msg -> `Error (false, msg))
  in
  let doc =
    "benchmark the steal policies (victim selection x idle backoff) on a \
     workload, or run the simulated locality grid (--grid)"
  in
  Cmd.v
    (Cmd.info "policy" ~doc)
    Term.(
      ret
        (const run $ workers_arg $ quick_arg $ grid_arg $ out_arg $ compare_arg
       $ workload_arg))

let faults_cmd =
  let workers_arg =
    let doc = "Number of worker domains." in
    Arg.(value & opt int 4 & info [ "w"; "workers" ] ~docv:"N" ~doc)
  in
  let seeds_arg =
    let doc = "Fault plans per mode (seeds 0..N-1)." in
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let no_exn_arg =
    let doc = "Leave injected-exception rules out of the random plans." in
    Arg.(value & flag & info [ "no-exceptions" ] ~doc)
  in
  let overhead_arg =
    let doc =
      "Instead of the sweep, measure the disabled-path overhead: fib wall \
       time with faults absent vs. a live-but-empty plan vs. the watchdog \
       sampling."
    in
    Arg.(value & flag & info [ "overhead" ] ~doc)
  in
  let max_seconds_arg =
    let doc =
      "Hard wall-clock limit; the process exits 124 if the sweep is still \
       running (a stalled sweep is itself a scheduler bug). 0 disables."
    in
    Arg.(value & opt int 0 & info [ "max-seconds" ] ~docv:"S" ~doc)
  in
  let run workers seeds no_exceptions overhead max_seconds =
    if workers < 1 then `Error (false, "--workers must be at least 1")
    else if seeds < 1 then `Error (false, "--seeds must be at least 1")
    else begin
      if max_seconds > 0 then begin
        (* watchdog for the watchdog: a detached domain that kills the
           process if the sweep wedges (never joined; exit ends it).
           The deadline is monotonic — a wall-clock step must not fire
           or defer it. *)
        let deadline =
          Wool_util.Clock.now_ns () + (max_seconds * 1_000_000_000)
        in
        ignore
          (Domain.spawn (fun () ->
               while Wool_util.Clock.now_ns () < deadline do
                 Unix.sleepf 0.2
               done;
               prerr_endline "woolbench faults: wall-clock limit hit";
               exit 124)
            : unit Domain.t)
      end;
      if overhead then begin
        ignore
          (Wool_report.Fault_sweep.overhead ~workers ()
            : (string * float) list);
        `Ok ()
      end
      else begin
        let rows =
          Wool_report.Fault_sweep.sweep ~workers ~seeds
            ~exceptions:(not no_exceptions) ()
        in
        let bad = Wool_report.Fault_sweep.print_rows rows in
        if bad = 0 then `Ok ()
        else `Error (false, Printf.sprintf "%d runs violated invariants" bad)
      end
    end
  in
  let doc =
    "stress the scheduler under seeded fault plans (all five modes) and \
     check protocol invariants after every run"
  in
  Cmd.v
    (Cmd.info "faults" ~doc)
    Term.(
      ret
        (const run $ workers_arg $ seeds_arg $ no_exn_arg $ overhead_arg
        $ max_seconds_arg))

let bench_cmd =
  let workloads_arg =
    let doc =
      Printf.sprintf "Workloads to bench: all | %s."
        (String.concat " | " Wool_report.Trace_summary.workloads)
    in
    Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD" ~doc)
  in
  let workers_arg =
    let doc = "Comma-separated worker counts to sweep." in
    Arg.(
      value & opt (list int) [ 1; 2; 4 ]
      & info [ "w"; "workers" ] ~docv:"N,M,..." ~doc)
  in
  let repeats_arg =
    let doc = "Timed pool runs per cell (a fresh pool each)." in
    Arg.(value & opt int 3 & info [ "repeats" ] ~docv:"N" ~doc)
  in
  let tiny_arg =
    let doc = "Use the smoke-test input sizes instead of the report sizes." in
    Arg.(value & flag & info [ "tiny" ] ~doc)
  in
  let out_arg =
    let doc = "Output path (default BENCH_<date>.json)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let compare_arg =
    let doc =
      "Baseline BENCH_*.json to diff against; exits non-zero if any cell's \
       drift-corrected new median lands beyond the baseline's p90 plus 10% \
       (whole-matrix machine drift is divided out and reported first)."
    in
    Arg.(
      value & opt (some string) None & info [ "compare" ] ~docv:"FILE" ~doc)
  in
  let modes_arg =
    let doc =
      Printf.sprintf
        "Comma-separated scheduler modes to sweep (default all: %s); e.g. \
         --modes private,ws_mult,lowsync for the relaxed-vs-direct \
         comparison without the full matrix."
        (String.concat "," (List.map Wool.Mode.name Wool.Mode.all))
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "modes" ] ~docv:"M,N,..." ~doc)
  in
  let run workers repeats tiny modes out compare_with workloads =
    if workers = [] || List.exists (fun w -> w < 1) workers then
      `Error (false, "--workers must be positive counts")
    else if repeats < 1 then `Error (false, "--repeats must be at least 1")
    else begin
      let size =
        if tiny then Wool_report.Exp_common.Spec.Tiny
        else Wool_report.Exp_common.Spec.Std
      in
      let date =
        let tm = Unix.gmtime (Unix.time ()) in
        Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
          (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
      in
      match
        Wool_report.Bench_json.run ~size ~workers ~repeats ?mode_names:modes
          ?out ?compare_with ~date workloads
      with
      | 0 -> `Ok ()
      | n ->
          `Error
            (false, Printf.sprintf "%d cell(s) regressed beyond noise" n)
      | exception Failure msg -> `Error (false, msg)
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Sys_error msg -> `Error (false, msg)
    end
  in
  let doc =
    "run the tier-1 benchmark matrix (workloads x modes x worker counts) \
     and write a schema-stable BENCH_<date>.json"
  in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      ret
        (const run $ workers_arg $ repeats_arg $ tiny_arg $ modes_arg
        $ out_arg $ compare_arg $ workloads_arg))

let ropes_cmd =
  let workers_arg =
    let doc = "Comma-separated worker counts to sweep." in
    Arg.(
      value & opt (list int) [ 1; 2; 4 ]
      & info [ "w"; "workers" ] ~docv:"N,M,..." ~doc)
  in
  let repeats_arg =
    let doc = "Timed pool runs per arm (a fresh pool each)." in
    Arg.(value & opt int 3 & info [ "repeats" ] ~docv:"N" ~doc)
  in
  let tiny_arg =
    let doc = "Use the smoke-test input sizes instead of the report sizes." in
    Arg.(value & flag & info [ "tiny" ] ~doc)
  in
  let run workers repeats tiny =
    if workers = [] || List.exists (fun w -> w < 1) workers then
      `Error (false, "--workers must be positive counts")
    else if repeats < 1 then `Error (false, "--repeats must be at least 1")
    else begin
      let size =
        if tiny then Wool_report.Exp_common.Spec.Tiny
        else Wool_report.Exp_common.Spec.Std
      in
      match Wool_report.Rope_sweep.run ~size ~workers ~repeats () with
      | () -> `Ok ()
      | exception Failure msg -> `Error (false, msg)
      | exception Invalid_argument msg -> `Error (false, msg)
    end
  in
  let doc =
    "compare lazy (steal-pressure-driven) vs eager rope splitting across \
     every scheduler mode, and the rope workload one-liners vs their \
     hand-rolled spawn trees"
  in
  Cmd.v
    (Cmd.info "ropes" ~doc)
    Term.(ret (const run $ workers_arg $ repeats_arg $ tiny_arg))

let serve_cmd =
  let workers_arg =
    let doc = "Number of worker domains (all spawned: server mode)." in
    Arg.(value & opt int 2 & info [ "w"; "workers" ] ~docv:"N" ~doc)
  in
  let producers_arg =
    let doc = "External producer domains submitting concurrently." in
    Arg.(value & opt int 2 & info [ "producers" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc = "Aggregate offered load in jobs per second." in
    Arg.(value & opt float 200. & info [ "rate" ] ~docv:"HZ" ~doc)
  in
  let seconds_arg =
    let doc = "Load duration per (mode, arrival) cell." in
    Arg.(value & opt float 1.0 & info [ "seconds" ] ~docv:"S" ~doc)
  in
  let capacity_arg =
    let doc = "Injection-lane slots (Reject admission when full)." in
    Arg.(value & opt int 64 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Arrival-process RNG seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let arrivals_arg =
    let doc =
      "Comma-separated arrival patterns to run: sustained | bursty | \
       overload (default all three). Overload runs each mode twice, under \
       Adaptive and Block admission."
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "arrivals" ] ~docv:"A,B,..." ~doc)
  in
  let out_arg =
    let doc = "Output path (default SERVE_<date>.json)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let check_arg =
    let doc = "Re-read the emitted file and validate it as JSON." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run workers producers rate_hz duration_s lane_capacity arrivals seed
      out check =
    if workers < 1 then `Error (false, "--workers must be at least 1")
    else if producers < 1 then
      `Error (false, "--producers must be at least 1")
    else if rate_hz <= 0. then `Error (false, "--rate must be positive")
    else if duration_s <= 0. then
      `Error (false, "--seconds must be positive")
    else begin
      let date =
        let tm = Unix.gmtime (Unix.time ()) in
        Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
          (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
      in
      let parse_arrival = function
        | "sustained" -> Ok Wool_report.Serve_load.Sustained
        | "bursty" -> Ok Wool_report.Serve_load.Bursty
        | "overload" -> Ok Wool_report.Serve_load.Overload
        | a -> Error a
      in
      let arrivals =
        Option.map (List.map parse_arrival) arrivals
      in
      match arrivals with
      | Some l
        when List.exists (function Error _ -> true | Ok _ -> false) l ->
          let bad =
            List.filter_map
              (function Error a -> Some a | Ok _ -> None)
              l
          in
          `Error
            ( false,
              Printf.sprintf
                "unknown arrival(s): %s (try sustained, bursty, overload)"
                (String.concat ", " bad) )
      | _ -> (
          let arrivals =
            Option.map
              (List.filter_map
                 (function Ok a -> Some a | Error _ -> None))
              arrivals
          in
          match
            Wool_report.Serve_load.run ~producers ~workers ~rate_hz
              ~duration_s ~lane_capacity ?arrivals ~seed ?out ~check ~date ()
          with
          | 0 -> `Ok ()
          | n ->
              `Error
                ( false,
                  Printf.sprintf "%d cell(s) violated pool invariants" n )
          | exception Failure msg -> `Error (false, msg)
          | exception Invalid_argument msg -> `Error (false, msg)
          | exception Sys_error msg -> `Error (false, msg))
    end
  in
  let doc =
    "drive a server-mode pool with open-loop Poisson traffic (sustained, \
     bursty, overload) from external producer domains; report \
     admit/reject/shed/expire/cancel counts, p50/p99 sojourn latency, and \
     goodput per scheduler mode and admission policy"
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ workers_arg $ producers_arg $ rate_arg $ seconds_arg
        $ capacity_arg $ arrivals_arg $ seed_arg $ out_arg $ check_arg))

let check_cmd =
  let histories_arg =
    let doc = "Fuzzed histories (consecutive seeds; 0 skips the fuzzer)." in
    Arg.(value & opt int 100 & info [ "histories" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "First fuzzing seed." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let no_scenarios_arg =
    let doc = "Skip the exhaustive model-checking scenarios." in
    Arg.(value & flag & info [ "no-scenarios" ] ~doc)
  in
  let max_schedules_arg =
    let doc = "Schedule-exploration cap per model-checking scenario." in
    Arg.(
      value & opt int 3_000_000 & info [ "max-schedules" ] ~docv:"N" ~doc)
  in
  let max_seconds_arg =
    let doc =
      "Hard wall-clock limit; the process exits 124 if checking is still \
       running (a wedged history is itself a scheduler bug). 0 disables."
    in
    Arg.(value & opt int 0 & info [ "max-seconds" ] ~docv:"S" ~doc)
  in
  let run histories seed0 no_scenarios max_schedules max_seconds =
    if histories < 0 then `Error (false, "--histories must be non-negative")
    else if max_schedules < 1 then
      `Error (false, "--max-schedules must be at least 1")
    else begin
      if max_seconds > 0 then begin
        (* same detached monotonic-deadline watchdog as `faults` *)
        let deadline =
          Wool_util.Clock.now_ns () + (max_seconds * 1_000_000_000)
        in
        ignore
          (Domain.spawn (fun () ->
               while Wool_util.Clock.now_ns () < deadline do
                 Unix.sleepf 0.2
               done;
               prerr_endline "woolbench check: wall-clock limit hit";
               exit 124)
            : unit Domain.t)
      end;
      let failed =
        if no_scenarios then 0
        else Wool_report.Check_fuzz.run_scenarios ~max_schedules ()
      in
      let bad =
        if histories = 0 then 0
        else
          Wool_report.Check_fuzz.print_rows
            (Wool_report.Check_fuzz.fuzz ~histories ~seed0 ())
      in
      if failed = 0 && bad = 0 then `Ok ()
      else
        `Error
          ( false,
            Printf.sprintf
              "%d scenario(s) failed, %d history(s) violated the oracle"
              failed bad )
    end
  in
  let doc =
    "model-check the steal protocol exhaustively on bounded scenarios, \
     then fuzz seeded multi-domain histories against a sequential oracle"
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      ret
        (const run $ histories_arg $ seed_arg $ no_scenarios_arg
        $ max_schedules_arg $ max_seconds_arg))

(* A Cmd.group would reject the free-form experiment keys the default
   term consumes ("woolbench list", "woolbench fig1 table2"), so route
   the named subcommands by hand and keep everything else on the
   original term. `woolbench help [cmd]` is rewritten to cmdliner's
   `[cmd] --help` form first — the hand routing used to swallow it as an
   unknown experiment key. *)
let () =
  let doc =
    "regenerate the tables and figures of the Wool paper; `woolbench \
     trace <workload>` records a scheduler trace; `woolbench policy \
     <workload>` sweeps the steal policies; `woolbench faults` and \
     `woolbench check` stress and model-check the scheduler; `woolbench \
     serve` load-tests the external-submission ingress; `woolbench ropes` \
     compares lazy vs eager rope splitting"
  in
  let subcommands =
    [
      trace_cmd; policy_cmd; faults_cmd; bench_cmd; ropes_cmd; serve_cmd;
      check_cmd;
    ]
  in
  let argv =
    match Array.to_list Sys.argv with
    | exe :: "help" :: rest -> Array.of_list ((exe :: rest) @ [ "--help" ])
    | _ -> Sys.argv
  in
  let is_subcommand =
    Array.length argv > 1
    && List.exists (fun c -> Cmd.name c = argv.(1)) subcommands
  in
  let code =
    if is_subcommand then
      Cmd.eval ~argv (Cmd.group (Cmd.info "woolbench" ~doc) subcommands)
    else Cmd.eval ~argv (Cmd.v (Cmd.info "woolbench" ~doc) experiments_term)
  in
  exit code
