(* Benchmark harness: regenerates every table and figure of the paper and
   then runs one Bechamel micro-benchmark group per table/figure.

   Part 1 prints the full reproduction (the same output as
   `woolbench all`): Table I, Table II (measured on the real runtime),
   Table III, Table IV, and Figures 1, 4, 5 and 6.

   Part 2 measures, with Bechamel's OLS estimator, the cost of the core
   operation behind each experiment: real spawn/join ladders for Table II,
   simulated steal micro-benchmarks for Table III, and the end-to-end
   regeneration kernels (scaled down) for the figures. Run with
   WOOL_BENCH_ONLY=micro or =tables to restrict to one part. *)

open Bechamel
open Toolkit

module E = Wool_sim.Engine
module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module F = Wool_workloads.Fib

(* ---- Part 2: one Test.make group per table/figure ---- *)

(* Table II: per-task cost of spawn+join on the real runtime, one worker,
   for each rung of the synchronisation ladder. *)
let table2_group =
  let mk name mode publicity =
    let pool =
      Wool.create
        ~config:
          (Wool.Config.make ~workers:1 ~mode ~publicity
             ~allow_relaxed:(Wool.Mode.is_relaxed mode) ())
        ()
    in
    Test.make ~name (Staged.stage (fun () -> Wool.run pool (fun ctx -> F.wool ctx 15)))
  in
  Test.make_grouped ~name:"table2.real-inline"
    [
      mk "locked" Wool.Locked Wool.All_public;
      mk "swap-generic" Wool.Swap_generic Wool.All_public;
      mk "task-specific" Wool.Task_specific Wool.All_public;
      mk "private(none)" Wool.Private Wool.All_public;
      mk "private(all)" Wool.Private Wool.All_private;
      Test.make ~name:"serial" (Staged.stage (fun () -> F.serial 15));
      mk "chase-lev" Wool.Clev Wool.All_public;
      mk "ws-mult" Wool.Ws_mult Wool.All_public;
      mk "low-sync" Wool.Lowsync Wool.All_public;
      (let module C = Wool_cactus.Cactus in
       let pool = C.create ~workers:1 () in
       let rec fib ctx n =
         if n < 2 then n
         else begin
           let a = C.promise () and b = C.promise () in
           C.spawn_into ctx a (fun ctx -> fib ctx (n - 1));
           C.spawn_into ctx b (fun ctx -> fib ctx (n - 2));
           C.sync ctx;
           C.read a + C.read b
         end
       in
       (* steal-parent: every spawn allocates a fiber — the moral analogue
          of Cilk++'s cactus-stack frames taxing every call (sec. IV-D1) *)
       Test.make ~name:"steal-parent (effects)"
         (Staged.stage (fun () -> C.run pool (fun ctx -> fib ctx 15))));
    ]

(* Table III: the 2^k-leaves-on-2^k-processors steal micro-benchmark in the
   simulator, per system. *)
let table3_group =
  let tree = Wool_workloads.Stress.tree ~height:2 ~leaf_iters:25_000 in
  let mk (pol : P.t) =
    Test.make ~name:pol.P.name
      (Staged.stage (fun () -> E.run ~policy:pol ~workers:4 tree))
  in
  Test.make_grouped ~name:"table3.steal-micro"
    (List.map mk [ P.wool; P.cilk; P.tbb; P.openmp_tasks ])

(* Figure 1: simulated fib under each system (scaled input). *)
let fig1_group =
  let root = W.root (W.fib ~reps:1 18) in
  let mk (pol : P.t) =
    Test.make ~name:pol.P.name
      (Staged.stage (fun () -> E.run ~policy:pol ~workers:8 root))
  in
  Test.make_grouped ~name:"fig1.fib-sim"
    (List.map mk [ P.wool; P.cilk; P.tbb; P.openmp_tasks ])

(* Figure 4: the locking-ladder policies on a small stress workload. *)
let fig4_group =
  let root = W.root (W.stress ~reps:4 ~height:6 ~leaf_iters:256 ()) in
  let mk (pol : P.t) =
    Test.make ~name:pol.P.name
      (Staged.stage (fun () -> E.run ~policy:pol ~workers:4 root))
  in
  Test.make_grouped ~name:"fig4.lock-ladder"
    (List.map mk [ P.lock_base; P.lock_peek; P.lock_trylock; P.nolock ])

(* Figure 5: one representative application panel per family. *)
let fig5_group =
  let mk name root (pol : P.t) =
    Test.make ~name
      (Staged.stage (fun () -> E.run ~policy:pol ~workers:4 root))
  in
  let mm = W.root (W.mm ~reps:2 32) in
  let ssf = W.root (W.ssf ~reps:2 9) in
  let chol = W.root (W.cholesky ~reps:1 ~n:60 ~nz:200 ()) in
  Test.make_grouped ~name:"fig5.applications"
    [
      mk "mm/wool" mm P.wool;
      mk "mm/cilk" mm P.cilk;
      mk "ssf/wool" ssf P.wool;
      mk "ssf/tbb" ssf P.tbb;
      mk "cholesky/wool" chol P.wool;
      mk "cholesky/openmp" chol P.openmp_tasks;
    ]

(* Figure 6: breakdown accounting overhead (instrumented run). *)
let fig6_group =
  let root = W.root (W.stress ~reps:2 ~height:6 ~leaf_iters:256 ()) in
  Test.make_grouped ~name:"fig6.breakdown"
    [
      Test.make ~name:"wool-p4-instrumented"
        (Staged.stage (fun () -> E.run ~policy:P.wool ~workers:4 root));
    ]

(* Table I: the analyses (span under both overhead models, granularity). *)
let table1_group =
  let region = Wool_workloads.Stress.tree ~height:8 ~leaf_iters:256 in
  Test.make_grouped ~name:"table1.analysis"
    [
      Test.make ~name:"span-free"
        (Staged.stage (fun () -> Wool_metrics.Span.span ~overhead:0 region));
      Test.make ~name:"span-2000"
        (Staged.stage (fun () -> Wool_metrics.Span.span ~overhead:2000 region));
      Test.make ~name:"granularity"
        (Staged.stage (fun () ->
             Wool_metrics.Granularity.task_granularity region));
    ]

(* Table IV: the analytic model evaluation. *)
let table4_group =
  Test.make_grouped ~name:"table4.model"
    [
      Test.make ~name:"model-eval"
        (Staged.stage (fun () ->
             let w = 1_000_000.0 and c2 = 2200.0 and cp = 6800.0 in
             let sp = 17.0 and p = 8.0 in
             w /. (cp +. ((w +. (2.0 *. (sp -. (p -. 1.0)) *. c2)) /. p))));
    ]

let all_groups =
  [
    table1_group; table2_group; table3_group; table4_group; fig1_group;
    fig4_group; fig5_group; fig6_group;
  ]

let run_micro () =
  print_endline "=== Bechamel micro-benchmarks (one group per table/figure) ===";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  let t =
    Wool_util.Table.create ~title:"OLS estimates"
      ~header:[ "benchmark"; "ns/run"; "r^2" ]
      ()
  in
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg [ Instance.monotonic_clock ] group in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
      in
      List.iter
        (fun (name, ols) ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Printf.sprintf "%.1f" e
            | Some [] | None -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "-"
          in
          Wool_util.Table.add_row t [ name; est; r2 ])
        (List.sort compare rows))
    all_groups;
  Wool_util.Table.print t

let () =
  let only = Sys.getenv_opt "WOOL_BENCH_ONLY" in
  if only <> Some "micro" then begin
    print_endline "=== Full reproduction: every table and figure ===";
    Wool_report.Registry.run_all ()
  end;
  if only <> Some "tables" then run_micro ()
